//! Cross-check: the structured solver and the faithful ILP backend decide
//! the same feasibility questions and find the same optima on a corpus of
//! seeded random instances. This is the evidence that the structured
//! backend implements the paper's constraint set exactly.

use rtrpart::core::optimal::{solve_optimal, OptimalOutcome};
use rtrpart::graph::Area;
use rtrpart::graph::Latency;
use rtrpart::workloads::random::{random_layered, RandomGraphParams};
use rtrpart::{
    validate_solution, Architecture, Backend, ExploreParams, SearchLimits, TemporalPartitioner,
};

fn small_params(tasks: usize) -> RandomGraphParams {
    RandomGraphParams {
        tasks,
        max_layer_width: 3,
        edge_probability: 0.6,
        design_points: (1, 2),
        area_range: (30, 90),
        latency_range: (100.0, 500.0),
        data_range: (1, 3),
    }
}

#[test]
fn feasibility_windows_agree_on_random_instances() {
    for seed in 0..12u64 {
        let g = random_layered(seed, &small_params(5));
        let arch = Architecture::new(Area::new(120), 24, Latency::from_ns(100.0));
        let n = 3;
        // Probe a ladder of windows; both backends must agree at each rung.
        let d_max_abs = rtrpart::max_latency(&g, &arch, n);
        let d_min_abs = rtrpart::min_latency(&g, &arch, n);
        let span = d_max_abs.as_ns() - d_min_abs.as_ns();
        for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let window = Latency::from_ns(d_min_abs.as_ns() + span * frac);
            let mut answers = Vec::new();
            for backend in [Backend::Structured, Backend::Milp] {
                let params = ExploreParams { backend, ..Default::default() };
                let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
                let (result, sol) = part.solve_window(n, window, Latency::ZERO).unwrap();
                if let Some(sol) = &sol {
                    assert!(
                        validate_solution(&g, &arch, sol).is_empty(),
                        "seed {seed}: {backend:?} returned an invalid solution"
                    );
                    assert!(
                        sol.total_latency(&g, &arch) <= window + Latency::from_ns(1e-6),
                        "seed {seed}: {backend:?} exceeded the window"
                    );
                }
                answers.push(matches!(result, rtrpart::IterationResult::Feasible { .. }));
            }
            assert_eq!(
                answers[0], answers[1],
                "seed {seed}, frac {frac}: structured {} vs milp {}",
                answers[0], answers[1]
            );
        }
    }
}

#[test]
fn optimal_latencies_agree_on_random_instances() {
    for seed in 20..28u64 {
        let g = random_layered(seed, &small_params(4));
        let arch = Architecture::new(Area::new(150), 24, Latency::from_ns(250.0));
        let mut optima = Vec::new();
        for backend in [Backend::Structured, Backend::Milp] {
            match solve_optimal(&g, &arch, 3, backend, SearchLimits::default()).unwrap() {
                OptimalOutcome::Optimal(sol, lat) => {
                    assert!(validate_solution(&g, &arch, &sol).is_empty());
                    optima.push(Some(lat.as_ns()));
                }
                OptimalOutcome::Infeasible => optima.push(None),
                OptimalOutcome::Interrupted(_) => {
                    panic!("seed {seed}: {backend:?} hit a limit on a 4-task instance")
                }
            }
        }
        match (optima[0], optima[1]) {
            (Some(a), Some(b)) => {
                assert!((a - b).abs() < 1e-6, "seed {seed}: structured {a} vs milp {b}")
            }
            (None, None) => {}
            other => panic!("seed {seed}: feasibility disagreement {other:?}"),
        }
    }
}

#[test]
fn explorations_land_within_delta_of_each_other() {
    for seed in 40..46u64 {
        let g = random_layered(seed, &small_params(5));
        let arch = Architecture::new(Area::new(140), 32, Latency::from_ns(150.0));
        let delta = 50.0;
        let mut bests = Vec::new();
        for backend in [Backend::Structured, Backend::Milp] {
            let params = ExploreParams {
                backend,
                delta: Latency::from_ns(delta),
                gamma: 1,
                ..Default::default()
            };
            let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
            let ex = part.explore().unwrap();
            bests.push(ex.best_latency.map(|l| l.as_ns()));
        }
        match (bests[0], bests[1]) {
            (Some(a), Some(b)) => assert!(
                (a - b).abs() <= delta + 1e-6,
                "seed {seed}: structured {a} vs milp {b} differ by more than δ"
            ),
            (None, None) => {}
            other => panic!("seed {seed}: feasibility disagreement {other:?}"),
        }
    }
}
