//! Table 1: the AR-filter case study — the iterative procedure's result
//! matches the optimal ILP solution.
//!
//! `cargo run --release -p rtr-bench --bin table1_ar`

use rtr_bench::{per_solve_limits, BenchRun};
use rtr_core::optimal::{solve_optimal, OptimalOutcome};
use rtr_core::{Architecture, Backend, ExploreParams, IterationResult, TemporalPartitioner};
use rtr_graph::{Area, Latency};
use rtr_workloads::ar::ar_filter;

fn main() {
    let graph = ar_filter().expect("static construction");
    // Size the device to about half the min-area total so the filter needs
    // 2-3 configurations, as in the paper's constrained setting.
    let r_max = graph.total_min_area().units() / 2;
    let arch = Architecture::new(Area::new(r_max), 64, Latency::from_us(1.0));

    let params = ExploreParams {
        delta: Latency::from_ns(20.0),
        alpha: 0,
        gamma: 2,
        limits: per_solve_limits(),
        ..Default::default()
    };
    let partitioner = TemporalPartitioner::new(&graph, &arch, params).expect("tasks fit");
    let exploration = partitioner.explore().expect("exploration runs");

    println!("Table 1 — AR filter (6 tasks), R_max = {r_max}, C_T = 1 µs, δ = 20 ns");
    println!("{:>4} {:>4} {:>12} {:>12} {:>12}", "N", "I", "Dmin(ns)", "Dmax(ns)", "Da(ns)");
    for r in &exploration.records {
        let result = match &r.result {
            IterationResult::Feasible { latency, .. } => format!("{:.1}", latency.as_ns()),
            IterationResult::Infeasible => "Inf.".to_owned(),
            IterationResult::LimitReached => "Inf.*".to_owned(),
        };
        println!(
            "{:>4} {:>4} {:>12.1} {:>12.1} {:>12}",
            r.n,
            r.iteration,
            r.d_min.as_ns(),
            r.d_max.as_ns(),
            result
        );
    }

    let iterative = exploration.best_latency.expect("AR filter is feasible").as_ns();
    println!("\nResult(Iterative): D_a = {iterative:.1} ns");

    // Result(Optimal): solve each explored bound to proven optimality and
    // take the best, the way the paper compares against CPLEX-optimal.
    let n_hi = exploration.n_min_upper + 2;
    let mut optimal_best = f64::INFINITY;
    for n in 1..=n_hi {
        match solve_optimal(&graph, &arch, n, Backend::Structured, per_solve_limits())
            .expect("structured backend cannot fail")
        {
            OptimalOutcome::Optimal(_, lat) => optimal_best = optimal_best.min(lat.as_ns()),
            OptimalOutcome::Interrupted(_) => println!("(N = {n}: optimality run interrupted)"),
            OptimalOutcome::Infeasible => {}
        }
    }
    println!("Result(Optimal):   D_a = {optimal_best:.1} ns");
    let gap = (iterative - optimal_best).abs();
    println!(
        "\npaper's claim — iterative equals optimal: {} (gap {:.1} ns, δ = 20 ns)",
        if gap <= 20.0 + 1e-6 { "REPRODUCED" } else { "NOT reproduced" },
        gap
    );

    // Cross-check with the faithful ILP backend (the CPLEX path the paper
    // actually used): the exploration must land within δ of the structured
    // backend.
    let milp_params = ExploreParams {
        delta: Latency::from_ns(20.0),
        alpha: 0,
        gamma: 2,
        backend: Backend::Milp,
        ..Default::default()
    };
    let milp_part = TemporalPartitioner::new(&graph, &arch, milp_params).expect("tasks fit");
    let mut bench = BenchRun::new("table1");
    bench.record_exploration("", &exploration);
    bench.metric("iterative_ns", iterative);
    bench.metric("optimal_ns", optimal_best);
    bench.metric("gap_ns", gap);
    match milp_part.explore() {
        Ok(ex) => {
            bench.record_exploration("milp_backend.", &ex);
            match ex.best_latency {
                Some(lat) => println!(
                    "ILP-backend cross-check: D_a = {:.1} ns ({} within δ of structured)",
                    lat.as_ns(),
                    if (lat.as_ns() - iterative).abs() <= 20.0 + 1e-6 {
                        "agrees"
                    } else {
                        "DISAGREES"
                    }
                ),
                None => println!("ILP-backend cross-check: no solution (DISAGREES)"),
            }
        }
        Err(e) => println!("ILP-backend cross-check failed: {e}"),
    }
    bench.write_and_report();
}
