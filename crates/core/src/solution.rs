//! Partitioning solutions and their derived metrics.

use crate::arch::{Architecture, EnvMemoryPolicy};
use rtr_graph::{Area, Latency, TaskGraph, TaskId};
use std::fmt;

/// Where one task went: its temporal partition (1-based, `1..=N`) and the
/// index of the selected design point within the task's `M_t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    /// Temporal partition, 1-based.
    pub partition: u32,
    /// Index into [`Task::design_points`](rtr_graph::Task::design_points).
    pub design_point: usize,
}

/// A complete temporal partitioning solution: one [`Placement`] per task.
///
/// A `Solution` corresponds to an integral assignment of the paper's
/// `Y_{p,t,m}` variables. All derived metrics (partition latencies `d_p`,
/// the used-partition count `η`, boundary memory occupancies) are computed
/// from the placements, never trusted from a solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    placements: Vec<Placement>,
    n_bound: u32,
}

impl Solution {
    /// Wraps raw placements (indexed by task id) under partition bound `n`.
    ///
    /// # Panics
    ///
    /// Panics if any placement names partition 0 or a partition above `n`.
    pub fn new(placements: Vec<Placement>, n_bound: u32) -> Self {
        for p in &placements {
            assert!(
                p.partition >= 1 && p.partition <= n_bound,
                "placement partition {} outside 1..={n_bound}",
                p.partition
            );
        }
        Solution { placements, n_bound }
    }

    /// The placement of every task, indexed by [`TaskId::index`].
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// The placement of one task.
    pub fn placement(&self, t: TaskId) -> Placement {
        self.placements[t.index()]
    }

    /// The partition bound `N` the solution was solved under.
    pub fn n_bound(&self) -> u32 {
        self.n_bound
    }

    /// The number of partitions actually used, the paper's `η`: the highest
    /// partition index holding any task.
    pub fn partitions_used(&self) -> u32 {
        self.placements.iter().map(|p| p.partition).max().unwrap_or(0)
    }

    /// Area occupied in partition `p` (1-based).
    pub fn partition_area(&self, graph: &TaskGraph, p: u32) -> Area {
        self.placements
            .iter()
            .enumerate()
            .filter(|(_, pl)| pl.partition == p)
            .map(|(t, pl)| graph.tasks()[t].design_points()[pl.design_point].area())
            .sum()
    }

    /// Secondary-resource usage of class `class` in partition `p`.
    pub fn partition_secondary(&self, graph: &TaskGraph, p: u32, class: usize) -> u64 {
        self.placements
            .iter()
            .enumerate()
            .filter(|(_, pl)| pl.partition == p)
            .map(|(t, pl)| graph.tasks()[t].design_points()[pl.design_point].secondary_usage(class))
            .sum()
    }

    /// The latency `d_p` of partition `p`: the longest dependency chain
    /// among tasks mapped to `p` (tasks without a dependency run spatially
    /// in parallel; the paper's Figure 4).
    pub fn partition_latency(&self, graph: &TaskGraph, p: u32) -> Latency {
        let mut best = vec![Latency::ZERO; graph.task_count()];
        let mut overall = Latency::ZERO;
        for &t in graph.topological_order() {
            let pl = self.placements[t.index()];
            if pl.partition != p {
                continue;
            }
            let own = graph.task(t).design_points()[pl.design_point].latency();
            let pred = graph
                .predecessors(t)
                .iter()
                .filter(|q| self.placements[q.index()].partition == p)
                .map(|q| best[q.index()])
                .fold(Latency::ZERO, Latency::max);
            best[t.index()] = pred + own;
            overall = overall.max(best[t.index()]);
        }
        overall
    }

    /// All partition latencies `d_1 ..= d_N` (unused partitions report 0).
    pub fn partition_latencies(&self, graph: &TaskGraph) -> Vec<Latency> {
        (1..=self.n_bound).map(|p| self.partition_latency(graph, p)).collect()
    }

    /// Total execution latency `Σ_p d_p` (no reconfiguration overhead).
    pub fn execution_latency(&self, graph: &TaskGraph) -> Latency {
        self.partition_latencies(graph).into_iter().sum()
    }

    /// The paper's `CalculateSolnLatency()`: `Σ_p d_p + η · C_T`.
    pub fn total_latency(&self, graph: &TaskGraph, arch: &Architecture) -> Latency {
        self.execution_latency(graph) + arch.reconfig_time() * self.partitions_used()
    }

    /// Memory occupancy at each partition boundary, indexed so that entry
    /// `p - 2` is the data resident between partitions `p - 1` and `p`
    /// (boundaries `2 ..= N`).
    ///
    /// An inter-task edge `a → b` occupies every boundary `p` with
    /// `partition(a) < p ≤ partition(b)`. Under
    /// [`EnvMemoryPolicy::Resident`], an environment input of task `t`
    /// additionally occupies boundaries `2 ..= partition(t)` and an
    /// environment output occupies boundaries `partition(t) + 1 ..= N`.
    pub fn boundary_memory(&self, graph: &TaskGraph, policy: EnvMemoryPolicy) -> Vec<u64> {
        let n = self.n_bound as usize;
        if n < 2 {
            return Vec::new();
        }
        let mut mem = vec![0u64; n - 1]; // boundary p stored at index p-2
        for e in graph.edges() {
            let pa = self.placements[e.src().index()].partition;
            let pb = self.placements[e.dst().index()].partition;
            for p in (pa + 1)..=pb {
                mem[(p - 2) as usize] += e.data();
            }
        }
        if policy == EnvMemoryPolicy::Resident {
            for (t, pl) in self.placements.iter().enumerate() {
                let task = &graph.tasks()[t];
                for p in 2..=pl.partition {
                    mem[(p - 2) as usize] += task.env_input();
                }
                for p in (pl.partition + 1)..=(n as u32) {
                    mem[(p - 2) as usize] += task.env_output();
                }
            }
        }
        mem
    }

    /// Peak boundary memory occupancy (0 for single-partition solutions).
    pub fn peak_memory(&self, graph: &TaskGraph, policy: EnvMemoryPolicy) -> u64 {
        self.boundary_memory(graph, policy).into_iter().max().unwrap_or(0)
    }

    /// Renumbers partitions to squeeze out empty ones (e.g. a solution using
    /// partitions {1, 3} becomes {1, 2}) and returns the compacted solution.
    /// Empty partitions waste a reconfiguration under the `η = max index`
    /// accounting, so solvers call this before reporting.
    pub fn compacted(&self, n_bound: u32) -> Solution {
        let mut used: Vec<u32> = self
            .placements
            .iter()
            .map(|p| p.partition)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        used.sort_unstable();
        let remap: std::collections::HashMap<u32, u32> =
            used.iter().enumerate().map(|(i, &p)| (p, i as u32 + 1)).collect();
        let placements = self
            .placements
            .iter()
            .map(|pl| Placement { partition: remap[&pl.partition], design_point: pl.design_point })
            .collect();
        Solution::new(placements, n_bound)
    }

    /// Tasks mapped to partition `p`, in task-id order.
    pub fn tasks_in_partition(&self, p: u32) -> Vec<TaskId> {
        self.placements
            .iter()
            .enumerate()
            .filter(|(_, pl)| pl.partition == p)
            .map(|(t, _)| TaskId::from_index(t))
            .collect()
    }

    /// Serializes the solution as text: a header line with the partition
    /// bound, then one `task <name> partition <p> dp <index>` line per task
    /// (names resolved through `graph`).
    pub fn to_text(&self, graph: &TaskGraph) -> String {
        let mut out = format!("solution n_bound={}\n", self.n_bound);
        for (t, pl) in self.placements.iter().enumerate() {
            out.push_str(&format!(
                "task {} partition {} dp {}\n",
                graph.tasks()[t].name(),
                pl.partition,
                pl.design_point
            ));
        }
        out
    }

    /// Parses a solution serialized by [`to_text`](Self::to_text) against
    /// the same graph.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed line, unknown task,
    /// or missing task.
    pub fn from_text(graph: &TaskGraph, input: &str) -> Result<Solution, String> {
        let mut lines = input.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty solution text")?;
        let n_bound: u32 = header
            .trim()
            .strip_prefix("solution n_bound=")
            .ok_or_else(|| format!("bad header `{header}`"))?
            .parse()
            .map_err(|_| format!("bad n_bound in `{header}`"))?;
        let mut placements = vec![None; graph.task_count()];
        for line in lines {
            let words: Vec<&str> = line.split_whitespace().collect();
            match words.as_slice() {
                ["task", name, "partition", p, "dp", m] => {
                    let id =
                        graph.task_by_name(name).ok_or_else(|| format!("unknown task `{name}`"))?;
                    let partition: u32 = p.parse().map_err(|_| format!("bad partition `{p}`"))?;
                    if partition == 0 || partition > n_bound {
                        return Err(format!("partition {partition} outside 1..={n_bound}"));
                    }
                    let design_point: usize =
                        m.parse().map_err(|_| format!("bad design point `{m}`"))?;
                    placements[id.index()] = Some(Placement { partition, design_point });
                }
                _ => return Err(format!("malformed line `{line}`")),
            }
        }
        let placements: Option<Vec<Placement>> = placements.into_iter().collect();
        let placements = placements.ok_or("solution does not cover every task")?;
        Ok(Solution::new(placements, n_bound))
    }

    /// Renders a one-line-per-partition summary.
    pub fn summary(&self, graph: &TaskGraph, arch: &Architecture) -> String {
        let mut out = String::new();
        for p in 1..=self.partitions_used() {
            let names: Vec<&str> =
                self.tasks_in_partition(p).into_iter().map(|t| graph.task(t).name()).collect();
            out.push_str(&format!(
                "partition {p}: area {} latency {} tasks [{}]\n",
                self.partition_area(graph, p),
                self.partition_latency(graph, p),
                names.join(", ")
            ));
        }
        out.push_str(&format!(
            "total: {} ({} partitions, reconfig {})",
            self.total_latency(graph, arch),
            self.partitions_used(),
            arch.reconfig_time() * self.partitions_used(),
        ));
        out
    }
}

impl fmt::Display for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "solution over {} tasks, η = {}", self.placements.len(), self.partitions_used())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtr_graph::{DesignPoint, TaskGraphBuilder};

    fn dp(area: u64, lat: f64) -> DesignPoint {
        DesignPoint::new("m", Area::new(area), Latency::from_ns(lat))
    }

    /// The paper's Figure 4 example: partition 1 holds three chains with
    /// latencies 350, 400, 150; partition 2 holds a 300 ns chain.
    fn figure4() -> (TaskGraph, Solution) {
        let mut b = TaskGraphBuilder::new();
        // Partition 1: chain A (200 + 150 = 350), chain B (400), task C (150).
        let a1 = b.add_task("a1").design_point(dp(10, 200.0)).finish();
        let a2 = b.add_task("a2").design_point(dp(10, 150.0)).finish();
        let bb = b.add_task("b").design_point(dp(10, 400.0)).finish();
        let c = b.add_task("c").design_point(dp(10, 150.0)).finish();
        // Partition 2: chain D (100 + 200 = 300).
        let d1 = b.add_task("d1").design_point(dp(10, 100.0)).finish();
        let d2 = b.add_task("d2").design_point(dp(10, 200.0)).finish();
        b.add_edge(a1, a2, 1).unwrap();
        b.add_edge(a2, d1, 2).unwrap();
        b.add_edge(bb, d1, 1).unwrap();
        b.add_edge(c, d2, 3).unwrap();
        b.add_edge(d1, d2, 1).unwrap();
        let g = b.build().unwrap();
        let pl = |p| Placement { partition: p, design_point: 0 };
        let sol = Solution::new(vec![pl(1), pl(1), pl(1), pl(1), pl(2), pl(2)], 2);
        (g, sol)
    }

    #[test]
    fn figure4_partition_latencies() {
        let (g, sol) = figure4();
        assert_eq!(sol.partition_latency(&g, 1).as_ns(), 400.0);
        assert_eq!(sol.partition_latency(&g, 2).as_ns(), 300.0);
        assert_eq!(sol.execution_latency(&g).as_ns(), 700.0);
        assert_eq!(sol.partitions_used(), 2);
    }

    #[test]
    fn total_latency_adds_reconfig_overhead() {
        let (g, sol) = figure4();
        let arch = Architecture::new(Area::new(100), 100, Latency::from_ns(50.0));
        assert_eq!(sol.total_latency(&g, &arch).as_ns(), 700.0 + 2.0 * 50.0);
    }

    #[test]
    fn boundary_memory_counts_crossing_edges() {
        let (g, sol) = figure4();
        // Crossing edges: a2->d1 (2), b->d1 (1), c->d2 (3) = 6 at boundary 2.
        let mem = sol.boundary_memory(&g, EnvMemoryPolicy::Streamed);
        assert_eq!(mem, vec![6]);
        assert_eq!(sol.peak_memory(&g, EnvMemoryPolicy::Streamed), 6);
    }

    #[test]
    fn resident_env_io_is_charged() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task("a").design_point(dp(1, 1.0)).env_input(5).finish();
        let c = b.add_task("c").design_point(dp(1, 1.0)).env_input(7).env_output(2).finish();
        b.add_edge(a, c, 4).unwrap();
        let g = b.build().unwrap();
        let pl = |p| Placement { partition: p, design_point: 0 };
        let sol = Solution::new(vec![pl(1), pl(3)], 3);
        // Boundary 2: edge a->c (4) + env_in(c)=7 (c at 3 >= 2). = 11.
        // Boundary 3: edge (4) + env_in(c)=7. = 11. a's env_in only before p1.
        let mem = sol.boundary_memory(&g, EnvMemoryPolicy::Resident);
        assert_eq!(mem, vec![11, 11]);
        // Streamed: only the edge.
        assert_eq!(sol.boundary_memory(&g, EnvMemoryPolicy::Streamed), vec![4, 4]);
        // Output of c would be charged after partition 3 — no boundary there.
        // Move c to partition 2: output charged at boundary 3.
        let sol2 = Solution::new(vec![pl(1), pl(2)], 3);
        let mem2 = sol2.boundary_memory(&g, EnvMemoryPolicy::Resident);
        assert_eq!(mem2, vec![4 + 7, 2]);
    }

    #[test]
    fn multi_boundary_edge_spans() {
        let mut b = TaskGraphBuilder::new();
        let a = b.add_task("a").design_point(dp(1, 1.0)).finish();
        let c = b.add_task("c").design_point(dp(1, 1.0)).finish();
        b.add_edge(a, c, 10).unwrap();
        let g = b.build().unwrap();
        let sol = Solution::new(
            vec![
                Placement { partition: 1, design_point: 0 },
                Placement { partition: 4, design_point: 0 },
            ],
            4,
        );
        // The edge is live at boundaries 2, 3, 4.
        assert_eq!(sol.boundary_memory(&g, EnvMemoryPolicy::Streamed), vec![10, 10, 10]);
    }

    #[test]
    fn compaction_removes_empty_partitions() {
        let (g, sol) = figure4();
        let stretched = Solution::new(
            sol.placements()
                .iter()
                .map(|pl| Placement {
                    partition: if pl.partition == 2 { 5 } else { 1 },
                    design_point: pl.design_point,
                })
                .collect(),
            5,
        );
        assert_eq!(stretched.partitions_used(), 5);
        let compact = stretched.compacted(5);
        assert_eq!(compact.partitions_used(), 2);
        assert_eq!(compact.execution_latency(&g), stretched.execution_latency(&g));
    }

    #[test]
    fn partition_area_sums_selected_points() {
        let (g, sol) = figure4();
        assert_eq!(sol.partition_area(&g, 1), Area::new(40));
        assert_eq!(sol.partition_area(&g, 2), Area::new(20));
        assert_eq!(sol.partition_area(&g, 7), Area::ZERO);
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn zero_partition_rejected() {
        let _ = Solution::new(vec![Placement { partition: 0, design_point: 0 }], 3);
    }

    #[test]
    fn text_round_trip() {
        let (g, sol) = figure4();
        let text = sol.to_text(&g);
        let parsed = Solution::from_text(&g, &text).unwrap();
        assert_eq!(sol, parsed);
    }

    #[test]
    fn from_text_rejects_garbage() {
        let (g, sol) = figure4();
        assert!(Solution::from_text(&g, "").is_err());
        assert!(Solution::from_text(&g, "solution n_bound=x").is_err());
        assert!(Solution::from_text(&g, "solution n_bound=2\nnonsense").is_err());
        assert!(Solution::from_text(&g, "solution n_bound=2\ntask ghost partition 1 dp 0").is_err());
        // Missing tasks.
        assert!(Solution::from_text(&g, "solution n_bound=2").is_err());
        // Partition outside the bound.
        let bad = sol.to_text(&g).replace("partition 2", "partition 9");
        assert!(Solution::from_text(&g, &bad).is_err());
    }

    #[test]
    fn summary_mentions_every_used_partition() {
        let (g, sol) = figure4();
        let arch = Architecture::new(Area::new(100), 100, Latency::from_ns(50.0));
        let s = sol.summary(&g, &arch);
        assert!(s.contains("partition 1"));
        assert!(s.contains("partition 2"));
        assert!(s.contains("total"));
    }
}
