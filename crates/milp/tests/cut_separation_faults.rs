//! Fault injection on the `milp.cut_separation` site: a tripped failpoint
//! skips a separation round without touching the cut pool, so faulted
//! solves degrade gracefully — same status, objective, and solution as a
//! clean run, with at most fewer cuts.
//!
//! This lives in its own integration binary because the failpoint
//! registry is process-global.

use rtr_milp::{solve_mip, Constraint, LinExpr, Model, Rel, SolveOptions, Status, Variable};
use rtr_trace::failpoint::{clear, install, FailpointConfig};

/// A knapsack whose LP relaxation is fractional at the root, so an
/// unfaulted optimality solve separates at least one cutting plane.
fn fractional_knapsack() -> Model {
    let mut m = Model::new();
    // Distinct subset values (no tied optima): the optimum {items 2, 4}
    // at value 23.5 is unique, so even solution vectors must match.
    let weights = [5.0, 6.0, 4.0, 3.0, 7.0];
    let values = [10.0, 13.0, 7.5, 5.0, 16.0];
    let vars: Vec<_> = (0..5).map(|_| m.add_var(Variable::binary())).collect();
    m.add_constraint(Constraint::new(
        vars.iter().zip(weights).map(|(&v, w)| (w, v)).collect::<LinExpr>(),
        Rel::Le,
        11.0,
    ));
    m.maximize(vars.iter().zip(values).map(|(&v, c)| (c, v)).collect::<LinExpr>());
    m
}

fn site() -> Vec<String> {
    vec!["milp.cut_separation".to_string()]
}

/// The failpoint registry is process-global; serialize the tests in this
/// binary so they cannot clobber each other's configuration.
static REGISTRY_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn faulted_separation_degrades_gracefully() {
    let _serial = REGISTRY_LOCK.lock().unwrap();
    let model = fractional_knapsack();
    let opts = SolveOptions::optimal();

    clear();
    let clean = solve_mip(&model, &opts).unwrap();
    assert_eq!(clean.status, Status::Optimal);
    assert!(
        clean.stats.cuts_generated >= 1,
        "fixture must separate cuts cleanly (got {})",
        clean.stats.cuts_generated
    );
    let clean_sol = clean.solution.as_ref().unwrap();

    // Every round faulted: no cuts at all, identical answer.
    install(FailpointConfig { seed: 1, rate: 1.0, sites: site() });
    let all_faulted = solve_mip(&model, &opts).unwrap();
    clear();
    assert_eq!(all_faulted.status, Status::Optimal);
    assert_eq!(all_faulted.stats.cuts_generated, 0, "all rounds skipped");
    assert_eq!(all_faulted.stats.cuts_active, 0, "pool stays empty");
    let faulted_sol = all_faulted.solution.as_ref().unwrap();
    assert_eq!(clean_sol.objective, faulted_sol.objective);
    assert_eq!(clean_sol.values, faulted_sol.values);

    // Partial faults across seeds: some rounds trip, some run; the pool is
    // never corrupted and the answer never moves.
    for seed in 0..16 {
        install(FailpointConfig { seed, rate: 0.5, sites: site() });
        let partial = solve_mip(&model, &opts).unwrap();
        clear();
        assert_eq!(partial.status, Status::Optimal, "seed {seed}");
        assert!(
            partial.stats.cuts_generated <= clean.stats.cuts_generated,
            "seed {seed}: faults can only suppress separation"
        );
        let sol = partial.solution.as_ref().unwrap();
        assert_eq!(clean_sol.objective, sol.objective, "seed {seed}");
        assert_eq!(clean_sol.values, sol.values, "seed {seed}");
    }
}

#[test]
fn faulted_separation_is_deterministic() {
    // The trip decision is a pure function of (seed, site, round): two
    // identically-configured solves produce identical statistics.
    let _serial = REGISTRY_LOCK.lock().unwrap();
    let model = fractional_knapsack();
    let opts = SolveOptions::optimal();
    install(FailpointConfig { seed: 7, rate: 0.5, sites: site() });
    let a = solve_mip(&model, &opts).unwrap();
    let b = solve_mip(&model, &opts).unwrap();
    clear();
    // Wall-clock time is the one legitimately non-deterministic statistic.
    let (mut sa, mut sb) = (a.stats, b.stats);
    sa.lp_time = std::time::Duration::ZERO;
    sb.lp_time = std::time::Duration::ZERO;
    assert_eq!(sa, sb);
    assert_eq!(a.solution.unwrap().values, b.solution.unwrap().values);
}
