//! §4 runtime claim: "in none of these experiments could the optimal
//! solution process get even a single feasible solution in the same run
//! time as the iterative solution process."
//!
//! We time the iterative exploration on the DCT, then give the *faithful
//! ILP backend* (the CPLEX stand-in) an optimality run with exactly that
//! wall-clock budget and report what it produced.
//!
//! `cargo run --release -p rtr-bench --bin runtime_comparison` runs the
//! committed deterministic-budget mode (structured windows under node
//! budgets, exact-engine runs under pivot budgets); pass `--deadline` to
//! restore the historical wall-clock per-solve deadlines (whose solve
//! traces depend on machine speed).

use rtr_bench::{BenchRun, DctExperiment};
use rtr_core::model::{IlpModel, ModelOptions};
use rtr_core::structured::StructuredSolver;
use rtr_core::{Architecture, Exploration, IterationResult, SearchGoal, TemporalPartitioner};
use rtr_graph::{Latency, TaskGraph};
use rtr_milp::{solve_mip, solve_mip_warm, SolveOptions, Status};
use rtr_workloads::dct::{dct_4x4, dct_nxn};
use std::time::Instant;

/// The window-proof model options: same shape as the milp backend's
/// default (`minimize_latency` on so `Status::Optimal` means a proven
/// latency optimum, the redundant `d_min` cut off).
fn proof_options() -> ModelOptions {
    ModelOptions { minimize_latency: true, include_dmin_cut: false, ..Default::default() }
}

/// Deterministic pivot budget for each full-size exact-engine run, per
/// device. Pivots — not nodes — are what bound MILP effort here: one
/// N = 10 node LP on the R_max = 576 device costs tens of thousands of
/// pivots (each ~10x pricier than on the half-size R_max = 1024 models),
/// so a node budget alone leaves the wall clock unbounded. The R_max =
/// 1024 budget is sized past the pivot at which the search finds its
/// first incumbent; the R_max = 576 budget documents how far the same
/// engine gets on a model whose *root relaxation alone* costs more than
/// the whole R_max = 1024 tree. Like every committed-mode budget they
/// are machine-independent, so the recorded counters are bit-identical
/// everywhere.
fn ilp_pivot_budget(r_max: u64) -> usize {
    if r_max == 576 {
        30_000
    } else {
        400_000
    }
}

/// Deterministic pivot budget for each *window audit* solve. Smaller than
/// the full-size budgets: the audit faces every undecided window (17 on
/// the R_max = 576 device), so its per-window rope is what keeps the
/// committed bench run in the minutes.
fn audit_pivot_budget(r_max: u64) -> usize {
    if r_max == 576 {
        8_000
    } else {
        60_000
    }
}

/// Audits every window the structured budget left undecided
/// (`IterationResult::LimitReached`), in two stages. Stage 1 is witness
/// propagation: a feasible assignment recorded by *any other* window of
/// the same exploration already decides an undecided window when it fits
/// the partition cap (`eta <= N`) and the latency window (`D_a <=
/// d_max`) — the subdivision solves every window from scratch, so a
/// later iteration's solution can retroactively witness an earlier
/// window the per-window node budget gave up on. Stage 2 attacks the
/// rest with the exact MILP engine — cutting planes, devex pricing,
/// pseudo-cost branching — under the deterministic per-device
/// [`audit_pivot_budget`]. Decided verdicts are patched into a copy of
/// the exploration (so the recorded `limit_windows` counts only what no
/// engine could decide), per-window `witnessed` or
/// `ilp.gap_ppm`/`ilp.nodes` columns and the `ilp_proved_windows`
/// counter are recorded, and the patched exploration is returned.
fn audit_limit_windows(
    graph: &TaskGraph,
    arch: &Architecture,
    ex: &Exploration,
    prefix: &str,
    pivot_budget: usize,
    bench: &mut BenchRun,
) -> Exploration {
    let options = proof_options();
    let solve = SolveOptions::optimal().with_pivot_limit(pivot_budget);
    let witnesses: Vec<(Latency, u32)> = ex
        .records
        .iter()
        .filter_map(|r| match r.result {
            IterationResult::Feasible { latency, eta } => Some((latency, eta)),
            _ => None,
        })
        .collect();
    let mut audited = ex.clone();
    let mut proved = 0u64;
    for r in &mut audited.records {
        if !matches!(r.result, IterationResult::LimitReached) {
            continue;
        }
        let wkey = format!("{prefix}window_n{}_i{}.", r.n, r.iteration);
        if let Some(&(latency, eta)) =
            witnesses.iter().find(|&&(l, e)| e <= r.n && l.as_ns() <= r.d_max.as_ns())
        {
            r.result = IterationResult::Feasible { latency, eta };
            proved += 1;
            bench.counter(format!("{wkey}witnessed"), 1);
            println!(
                "  audit of limit window N = {} I = {}: witnessed feasible by the \
                 exploration's own D_a = {:.0} ns, η = {eta} solution",
                r.n,
                r.iteration,
                latency.as_ns()
            );
            continue;
        }
        let ilp = IlpModel::build(graph, arch, r.n, r.d_max, r.d_min, &options)
            .expect("table windows stay under the path limits");
        let out = ilp.model().solve(&solve).expect("window model solves");
        bench.counter(format!("{wkey}ilp.gap_ppm"), out.stats.gap_ppm as u64);
        bench.counter(format!("{wkey}ilp.nodes"), out.stats.nodes as u64);
        let verdict = match (out.status, &out.solution) {
            (Status::Optimal | Status::Feasible, Some(sol)) => {
                let decoded = ilp.decode(sol).compacted(r.n);
                let latency = decoded.total_latency(graph, arch);
                let eta = decoded.partitions_used();
                r.result = IterationResult::Feasible { latency, eta };
                proved += 1;
                format!("feasible, D_a = {:.0} ns over η = {eta}", latency.as_ns())
            }
            (Status::Infeasible, _) => {
                r.result = IterationResult::Infeasible;
                proved += 1;
                "proved infeasible".to_owned()
            }
            _ => format!("still undecided (gap {} ppm)", out.stats.gap_ppm),
        };
        println!(
            "  ILP audit of limit window N = {} I = {}: {} ({} nodes, {} cuts)",
            r.n, r.iteration, verdict, out.stats.nodes, out.stats.cuts_generated
        );
    }
    bench.counter(format!("{prefix}ilp_proved_windows"), proved);
    audited
}

fn main() {
    let deadline_mode = std::env::args().skip(1).any(|a| a == "--deadline");
    let graph = dct_4x4();
    let mut bench = BenchRun::new("solver");
    // Context for the parallel columns: with a single host core the workers
    // time-slice and the speedup sits near (or below) 1.0 by construction.
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    bench.counter("host_cpus", cpus as u64);
    println!(
        "mode: {} ({cpus} host cpu{})",
        if deadline_mode {
            "--deadline (5 s wall-clock per solve)"
        } else {
            "deterministic node/pivot budgets"
        },
        if cpus == 1 { "" } else { "s" },
    );
    for exp in [DctExperiment::table3(), DctExperiment::table5()] {
        let arch = exp.architecture();
        let params = if deadline_mode { exp.params_deadline() } else { exp.params() };
        let partitioner =
            TemporalPartitioner::new(&graph, &arch, params.clone()).expect("tasks fit");
        let start = Instant::now();
        let exploration = partitioner.explore().expect("exploration runs");
        let iterative_time = start.elapsed();
        let iterative = exploration.best_latency.expect("DCT is feasible");
        println!(
            "R_max = {}: iterative procedure found D_a = {:.0} ns in {:.2?}",
            exp.r_max,
            iterative.as_ns(),
            iterative_time
        );
        let prefix = format!("rmax{}.", exp.r_max);
        if deadline_mode {
            // Wall-clock deadlines make every solve outcome (and therefore
            // best_latency_ns, node counts, window verdicts) depend on
            // machine speed: tag them so rtr-bench-diff skips them.
            bench.record_exploration_deadline(&prefix, &exploration);
        } else {
            // Deterministic mode: give the exact engine a shot at every
            // window the structured budget could not decide before the
            // window summary is recorded.
            let audited = audit_limit_windows(
                &graph,
                &arch,
                &exploration,
                &prefix,
                audit_pivot_budget(exp.r_max),
                &mut bench,
            );
            bench.record_exploration(&prefix, &audited);
        }
        bench.metric(format!("{prefix}iterative_ms"), iterative_time.as_secs_f64() * 1e3);

        // The same exploration fanned out on 4 worker threads: the relaxed
        // bounds' wall-clock-limited windows overlap instead of serializing.
        let start = Instant::now();
        let parallel = partitioner.explore_parallel(4).expect("exploration runs");
        let parallel_time = start.elapsed();
        let parallel_latency = parallel.best_latency.expect("DCT is feasible");
        let speedup = iterative_time.as_secs_f64() / parallel_time.as_secs_f64();
        println!(
            "R_max = {}: parallel (4 threads) found D_a = {:.0} ns in {:.2?} ({speedup:.2}x)",
            exp.r_max,
            parallel_latency.as_ns(),
            parallel_time
        );
        bench.metric(format!("{prefix}parallel4_ms"), parallel_time.as_secs_f64() * 1e3);
        bench.metric(format!("{prefix}parallel4_best_latency_ns"), parallel_latency.as_ns());
        if cpus > 1 {
            bench.metric(format!("{prefix}parallel4_speedup"), speedup);
        } else {
            // One core: the workers time-slice, so a "speedup" would only
            // measure scheduler noise. Record the suppression instead.
            println!("  (single host cpu: {prefix}parallel4_speedup suppressed)");
            bench.counter(format!("{prefix}parallel4_speedup_suppressed_1cpu"), 1);
        }

        // Intra-window parallelism: the same sequential relaxation loop, but
        // every structured window solve splits its assignment tree across 4
        // workers sharing one incumbent and one node budget.
        let mut intra_params = params.clone();
        intra_params.solver_threads = 4;
        let intra_partitioner =
            TemporalPartitioner::new(&graph, &arch, intra_params).expect("tasks fit");
        let start = Instant::now();
        let intra = intra_partitioner.explore().expect("exploration runs");
        let intra_time = start.elapsed();
        let intra_latency = intra.best_latency.expect("DCT is feasible");
        let intra_speedup = iterative_time.as_secs_f64() / intra_time.as_secs_f64();
        println!(
            "R_max = {}: intra-window (4 threads) found D_a = {:.0} ns in {:.2?} ({intra_speedup:.2}x)",
            exp.r_max,
            intra_latency.as_ns(),
            intra_time
        );
        bench.metric(format!("{prefix}search_parallel4_ms"), intra_time.as_secs_f64() * 1e3);
        bench.metric(format!("{prefix}search_parallel4_best_latency_ns"), intra_latency.as_ns());
        if cpus > 1 {
            bench.metric(format!("{prefix}search_parallel4_speedup"), intra_speedup);
        } else {
            println!("  (single host cpu: {prefix}search_parallel4_speedup suppressed)");
            bench.counter(format!("{prefix}search_parallel4_speedup_suppressed_1cpu"), 1);
        }

        // Both layers on the unified work-stealing pool: candidate windows
        // fan out AND each window solve splits its tree, all under one
        // 4-thread budget — a stalled window's idle workers migrate to
        // other candidates instead of honouring a static per-layer split.
        let mut sched_params = params.clone();
        sched_params.solver_threads = 4;
        let sched_partitioner =
            TemporalPartitioner::new(&graph, &arch, sched_params).expect("tasks fit");
        let start = Instant::now();
        let unified = sched_partitioner.explore_parallel(4).expect("exploration runs");
        let unified_time = start.elapsed();
        let unified_latency = unified.best_latency.expect("DCT is feasible");
        let unified_speedup = iterative_time.as_secs_f64() / unified_time.as_secs_f64();
        println!(
            "R_max = {}: unified pool (4 threads, both layers) found D_a = {:.0} ns in {:.2?} \
             ({unified_speedup:.2}x)",
            exp.r_max,
            unified_latency.as_ns(),
            unified_time
        );
        bench.metric(format!("{prefix}search_sched4_ms"), unified_time.as_secs_f64() * 1e3);
        bench.metric(format!("{prefix}search_sched4_best_latency_ns"), unified_latency.as_ns());
        if cpus > 1 {
            bench.metric(format!("{prefix}search_sched4_speedup"), unified_speedup);
        } else {
            println!("  (single host cpu: {prefix}search_sched4_speedup suppressed)");
            bench.counter(format!("{prefix}search_sched4_speedup_suppressed_1cpu"), 1);
        }

        // Optimality run on the faithful ILP with the same budget: the
        // deterministic mode matches the structured windows' 40 M-node
        // budget; `--deadline` restores the historical "same wall-clock as
        // the iterative procedure" handicap, whose outcome depends on
        // machine speed and is therefore tagged for the diff gate.
        let n = exploration.best.as_ref().expect("feasible").partitions_used();
        let d_max = rtr_core::max_latency(&graph, &arch, n);
        let options = proof_options();
        let ilp = IlpModel::build(&graph, &arch, n, d_max, Latency::ZERO, &options)
            .expect("model builds");
        let (solve, tag, budget_text) = if deadline_mode {
            (
                SolveOptions::optimal().with_time_limit(iterative_time),
                "_deadline_dependent",
                format!("{iterative_time:.2?}"),
            )
        } else {
            let pivots = ilp_pivot_budget(exp.r_max);
            (SolveOptions::optimal().with_pivot_limit(pivots), "", format!("{pivots} pivots"))
        };
        println!(
            "  ILP-to-optimality at N = {n}: {} variables, {} constraints, budget {budget_text}",
            ilp.model().var_count(),
            ilp.model().constraint_count(),
        );
        match ilp.model().solve(&solve) {
            Ok(out) => {
                let verdict = match out.status {
                    Status::Optimal => "proved optimality (!)",
                    Status::Feasible => "found an incumbent but no proof",
                    Status::LimitReached => "found NO feasible solution in the budget",
                    Status::Infeasible => "claims infeasible",
                    Status::Unbounded => "claims unbounded",
                };
                println!(
                    "  -> {} ({} nodes, {} simplex iterations, {} cuts, gap {} ppm)\n",
                    verdict,
                    out.stats.nodes,
                    out.stats.simplex_iterations,
                    out.stats.cuts_generated,
                    out.stats.gap_ppm
                );
                bench.counter(format!("{prefix}ilp.nodes{tag}"), out.stats.nodes as u64);
                bench.counter(
                    format!("{prefix}ilp.pivots{tag}"),
                    out.stats.simplex_iterations as u64,
                );
                bench.counter(
                    format!("{prefix}ilp.found_feasible{tag}"),
                    u64::from(out.status.has_solution()),
                );
                bench.counter(format!("{prefix}ilp.gap_ppm{tag}"), out.stats.gap_ppm as u64);
                bench.counter(
                    format!("{prefix}ilp.cuts_generated{tag}"),
                    out.stats.cuts_generated as u64,
                );
                bench
                    .counter(format!("{prefix}ilp.cuts_active{tag}"), out.stats.cuts_active as u64);
                bench.counter(
                    format!("{prefix}ilp.gomory_rounds{tag}"),
                    out.stats.gomory_rounds as u64,
                );
                bench.counter(
                    format!("{prefix}ilp.lp.devex_resets{tag}"),
                    out.stats.devex_resets as u64,
                );
                bench.counter(
                    format!("{prefix}ilp.pseudo_cost_branches{tag}"),
                    out.stats.pseudo_cost_branches as u64,
                );
                bench.counter(
                    format!("{prefix}ilp.strong_branch_evals{tag}"),
                    out.stats.strong_branch_evals as u64,
                );
            }
            Err(e) => println!("  -> solver error: {e}\n"),
        }

        // Where the ILP backend *does* deliver: a small (2x2) DCT window on
        // the same device is proved to optimality outright, and after the
        // subdivision tightens the latency window, a re-solve warm-started
        // from the parent's root basis reaches the identical outcome with
        // fewer pivots than a cold solve of the same model.
        let small = dct_nxn(2).expect("2x2 DCT builds");
        let n_small = 2;
        let d_max = rtr_core::max_latency(&small, &arch, n_small);
        let mut small_ilp = IlpModel::build(&small, &arch, n_small, d_max, Latency::ZERO, &options)
            .expect("model builds");
        // Presolve off: the chained basis indexes the unreduced model, and
        // the cold reference must solve the identical model.
        let warm_opts = SolveOptions { presolve: false, ..SolveOptions::optimal() };
        let cold_opts = SolveOptions { warm_start: false, ..warm_opts.clone() };
        let parent = solve_mip(small_ilp.model(), &warm_opts).expect("small DCT window solves");
        assert_eq!(parent.status, Status::Optimal, "2x2 DCT must be decidable");
        bench.counter(
            format!("{prefix}small.ilp.found_feasible"),
            u64::from(parent.status.has_solution()),
        );
        bench.counter(format!("{prefix}small.ilp.nodes"), parent.stats.nodes as u64);
        bench.counter(format!("{prefix}small.ilp.pivots"), parent.stats.simplex_iterations as u64);
        let objective =
            parent.solution.as_ref().map(|s| s.objective).expect("optimal has a solution");
        println!(
            "  2x2 DCT window at N = {n_small}: ILP proved optimality, objective {objective:.3} \
             ({} nodes, {} pivots)",
            parent.stats.nodes, parent.stats.simplex_iterations
        );
        let basis = parent.root_basis.expect("unreduced optimal solve returns a root basis");
        small_ilp.set_latency_window(Latency::from_ns(d_max.as_ns() * 0.75), Latency::ZERO);
        let warm = solve_mip_warm(small_ilp.model(), &warm_opts, Some(&basis))
            .expect("warm re-solve runs");
        let cold = solve_mip(small_ilp.model(), &cold_opts).expect("cold re-solve runs");
        assert_eq!(warm.status, cold.status, "warm start changed the re-solve outcome");
        println!(
            "  tightened re-solve: warm {} pivots ({} warm starts, {} saved vs in-tree price), \
             cold {} pivots",
            warm.stats.simplex_iterations,
            warm.stats.warm_starts,
            warm.stats.pivots_saved,
            cold.stats.simplex_iterations
        );
        bench.counter(format!("{prefix}lp.warm_starts"), warm.stats.warm_starts as u64);
        bench.counter(format!("{prefix}lp.cold_starts"), warm.stats.cold_starts as u64);
        bench.counter(format!("{prefix}lp.refactorizations"), warm.stats.refactorizations as u64);
        bench.counter(format!("{prefix}lp.pivots_saved"), warm.stats.pivots_saved as u64);
        bench.counter(
            format!("{prefix}lp.pivots_warm_resolve"),
            warm.stats.simplex_iterations as u64,
        );
        bench.counter(
            format!("{prefix}lp.pivots_cold_resolve"),
            cold.stats.simplex_iterations as u64,
        );
    }
    // Dominance memoization's worth, measured where it is measurable: the
    // table windows above run under a fixed node budget, so with or
    // without the memo they visit exactly one budget's worth of nodes and
    // the delta says nothing about pruning. A relaxed device makes the
    // N = 3 and N = 4 DCT windows *decidable*; the node delta between two
    // exhausted searches is pure pruning.
    let relaxed =
        rtr_core::Architecture::new(rtr_graph::Area::new(2048), 512, Latency::from_us(1.0));
    let limits = rtr_core::SearchLimits { node_limit: 200_000_000, time_limit: None };
    for n in [3u32, 4] {
        let on = StructuredSolver::new(&graph, &relaxed, n, 1e12, SearchGoal::Optimal, limits);
        let (on_out, on_stats) = on.run();
        let off = StructuredSolver::new(&graph, &relaxed, n, 1e12, SearchGoal::Optimal, limits)
            .with_memo_limit(0);
        let (off_out, off_stats) = off.run();
        assert_eq!(on_out, off_out, "memoization changed the N = {n} optimum");
        assert!(on_stats.exhausted && off_stats.exhausted, "relaxed window must be decidable");
        let reduction = 1.0 - on_stats.nodes as f64 / off_stats.nodes as f64;
        println!(
            "dominance memoization, decidable DCT window N = {n}: {} of {} nodes \
             ({:.1}% fewer, {} dominance prunes)",
            on_stats.nodes,
            off_stats.nodes,
            reduction * 1e2,
            on_stats.dominance_prunes
        );
        bench.counter(format!("dominance.n{n}.nodes"), on_stats.nodes);
        bench.counter(format!("dominance.n{n}.nodes_nomemo"), off_stats.nodes);
        bench.counter(format!("dominance.n{n}.prunes"), on_stats.dominance_prunes);
        bench.metric(format!("dominance.n{n}.node_reduction"), reduction);
    }
    // Resilience overhead: the table-3 exploration streamed into a
    // checkpoint after every completed window (the most aggressive policy
    // the CLI offers, `--checkpoint-every 0`). The per-write latency comes
    // from the `checkpoint.write` trace spans; the sum of those spans over
    // the exploration's wall time is the overhead the checkpointing layer
    // promises to keep negligible.
    let exp = DctExperiment::table3();
    let arch = exp.architecture();
    let partitioner = TemporalPartitioner::new(&graph, &arch, exp.params()).expect("tasks fit");
    let ck_path = std::env::temp_dir().join(format!("rtr_bench_ck_{}.json", std::process::id()));
    let policy = rtr_core::CheckpointPolicy::new(&ck_path, std::time::Duration::ZERO);
    rtr_trace::install(std::sync::Arc::new(rtr_trace::MemorySink::new()));
    let start = Instant::now();
    let (result, events) =
        rtr_trace::capture(|| partitioner.explore_resumable(1, Some(&policy), None, |_| {}));
    let ck_wall = start.elapsed();
    rtr_trace::uninstall();
    let _ = std::fs::remove_file(&ck_path);
    let exploration = result.expect("checkpointed exploration runs");

    let mut write_us: Vec<u64> = events
        .iter()
        .filter(|e| e.name == "checkpoint.write")
        .filter_map(|e| {
            e.fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
                ("dur_us", rtr_trace::Value::U64(us)) => Some(*us),
                _ => None,
            })
        })
        .collect();
    assert!(!write_us.is_empty(), "checkpointed exploration emitted no write spans");
    write_us.sort_unstable();
    let pct = |p: f64| write_us[((write_us.len() - 1) as f64 * p).round() as usize];
    let (p50, p99) = (pct(0.50), pct(0.99));
    let total_us: u64 = write_us.iter().sum();
    let overhead = total_us as f64 / (ck_wall.as_secs_f64() * 1e6);
    println!(
        "checkpointing every window: {} writes, p50 {p50} us, p99 {p99} us \
         ({:.3}% of the {:.2?} exploration)",
        write_us.len(),
        overhead * 1e2,
        ck_wall
    );
    assert!(
        overhead < 0.01,
        "checkpoint writes consumed {:.2}% of the exploration wall time",
        overhead * 1e2
    );
    bench.counter("resilience.checkpoint_writes", write_us.len() as u64);
    bench.metric("resilience.checkpoint_write_p50_us", p50 as f64);
    bench.metric("resilience.checkpoint_write_p99_us", p99 as f64);
    bench.metric("resilience.checkpoint_overhead_frac", overhead);
    let d = &exploration.degradation;
    bench.counter("resilience.panics_caught", d.panics_caught);
    bench.counter("resilience.jobs_retried", d.jobs_retried);
    bench.counter("resilience.subtrees_lost", d.subtrees_lost);
    bench.counter("resilience.checkpoint_failures", d.checkpoint_failures);
    assert!(d.is_clean(), "clean bench run reported degradation: {}", d.render());

    println!(
        "paper's §4 claim is about matched run time: reproduce it with --deadline (the exact \
         engine finds nothing in the iterative wall clock). The committed pivot budgets are \
         deliberately larger, so an incumbent under them does not contradict it."
    );
    bench.write_and_report();
}
