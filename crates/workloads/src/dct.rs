//! The 4×4 DCT case study (paper §4, Figure 6, Table 2).
//!
//! "DCT was modeled in the form of 32 vector products … a collection of
//! eight tasks forms a row of the 4×4 output matrix … two kinds of tasks in
//! the task graph, T1 and T2, whose structure is similar to the vector
//! product, but whose bit-widths differ."
//!
//! The standard separable 2-D DCT `Z = C·X·Cᵀ` yields exactly this shape:
//! 16 stage-1 vector products compute `Y = C·X` (narrow datapath, kind T1)
//! and 16 stage-2 vector products compute `Z = Y·Cᵀ` (widened intermediate
//! values, kind T2). Row `i`'s four stage-1 tasks feed row `i`'s four
//! stage-2 tasks — a complete bipartite 4×4 per row, eight tasks per row,
//! four rows, 64 edges.
//!
//! The design-point table in the available copy of the paper is corrupted;
//! the values here are reconstructed so that every *uncorrupted* quantity in
//! the paper matches exactly (see `DESIGN.md`): `MaxLatency = 25,440 ns`,
//! `MinLatency = 905 ns`, `N_min^l = 8` at `R_max = 576` and `5` at
//! `R_max = 1024`, `N_min^u = 11` and `7`.

use rtr_graph::{Area, DesignPoint, GraphError, Latency, TaskGraph, TaskGraphBuilder};

/// Reconstructed design points `(area, latency ns)` for stage-1 (T1) tasks.
pub const T1_DESIGN_POINTS: [(u64, f64); 3] = [(130, 790.0), (155, 580.0), (180, 430.0)];

/// Reconstructed design points `(area, latency ns)` for stage-2 (T2) tasks.
pub const T2_DESIGN_POINTS: [(u64, f64); 3] = [(150, 800.0), (180, 610.0), (210, 475.0)];

fn design_points(table: &[(u64, f64); 3]) -> Vec<DesignPoint> {
    let names = ["1mul-1add", "2mul-1add", "4mul-3add"];
    table
        .iter()
        .zip(names)
        .map(|(&(area, lat), name)| DesignPoint::new(name, Area::new(area), Latency::from_ns(lat)))
        .collect()
}

/// Builds the 32-task 4×4 DCT task graph of the paper's case study.
///
/// # Examples
///
/// ```
/// let dct = rtr_workloads::dct::dct_4x4();
/// assert_eq!(dct.task_count(), 32);
/// assert_eq!(dct.edge_count(), 64);
/// assert_eq!(dct.total_max_latency().as_ns(), 25_440.0);
/// assert_eq!(dct.critical_path_min_latency().as_ns(), 905.0);
/// ```
pub fn dct_4x4() -> TaskGraph {
    dct_nxn(4).expect("the 4x4 instance is statically valid")
}

/// Builds an `n × n` DCT as `2·n²` vector products with the same two task
/// kinds — a scaling generalization used by the stress benches.
///
/// # Errors
///
/// Returns a [`GraphError`] only if `n == 0` (an empty graph).
pub fn dct_nxn(n: usize) -> Result<TaskGraph, GraphError> {
    let mut b = TaskGraphBuilder::new();
    let t1 = design_points(&T1_DESIGN_POINTS);
    let t2 = design_points(&T2_DESIGN_POINTS);
    let mut stage1 = vec![Vec::with_capacity(n); n];
    let mut stage2 = vec![Vec::with_capacity(n); n];
    for row in 0..n {
        for col in 0..n {
            let id = b
                .add_task(format!("vp1_r{row}_c{col}"))
                .design_points(t1.iter().cloned())
                .env_input(n as u64)
                .finish();
            stage1[row].push(id);
        }
        for col in 0..n {
            let id = b
                .add_task(format!("vp2_r{row}_c{col}"))
                .design_points(t2.iter().cloned())
                .env_output(1)
                .finish();
            stage2[row].push(id);
        }
    }
    for row in 0..n {
        for &src in &stage1[row] {
            for &dst in &stage2[row] {
                b.add_edge(src, dst, 1)?;
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quantities_match() {
        let g = dct_4x4();
        assert_eq!(g.task_count(), 32);
        assert_eq!(g.edge_count(), 64);
        // Quantities the paper states or implies (see DESIGN.md):
        assert_eq!(g.total_max_latency().as_ns(), 25_440.0);
        assert_eq!(g.critical_path_min_latency().as_ns(), 905.0);
        assert_eq!(g.total_min_area().units(), 4_480);
        assert_eq!(g.total_max_area().units(), 6_240);
        // Partition bounds: N_min^l and N_min^u at both R_max values.
        assert_eq!(g.total_min_area().partitions_needed(Area::new(576)), 8);
        assert_eq!(g.total_min_area().partitions_needed(Area::new(1024)), 5);
        assert_eq!(g.total_max_area().partitions_needed(Area::new(576)), 11);
        assert_eq!(g.total_max_area().partitions_needed(Area::new(1024)), 7);
    }

    #[test]
    fn structure_is_row_bipartite() {
        let g = dct_4x4();
        assert_eq!(g.roots().len(), 16);
        assert_eq!(g.leaves().len(), 16);
        for e in g.edges() {
            let src = g.task(e.src()).name();
            let dst = g.task(e.dst()).name();
            assert!(src.starts_with("vp1_"));
            assert!(dst.starts_with("vp2_"));
            // Same row.
            assert_eq!(src.split('_').nth(1), dst.split('_').nth(1));
        }
        // Each stage-1 task feeds exactly 4 stage-2 tasks.
        for t in g.roots() {
            assert_eq!(g.successors(t).len(), 4);
        }
    }

    #[test]
    fn path_count_is_64() {
        let g = dct_4x4();
        let e = g.enumerate_paths(rtr_graph::PathLimits::default());
        assert_eq!(e.total_path_count(), Some(64));
        assert!(e.paths().iter().all(|p| p.len() == 2));
    }

    #[test]
    fn scaled_instances() {
        let g2 = dct_nxn(2).unwrap();
        assert_eq!(g2.task_count(), 8);
        assert_eq!(g2.edge_count(), 8);
        let g6 = dct_nxn(6).unwrap();
        assert_eq!(g6.task_count(), 72);
        assert_eq!(g6.edge_count(), 216); // n rows x n stage-1 x n stage-2 = n^3
        assert!(dct_nxn(0).is_err());
    }

    #[test]
    fn design_points_are_pareto_fronts() {
        let g = dct_4x4();
        for t in g.tasks() {
            for a in t.design_points() {
                for b in t.design_points() {
                    assert!(!a.is_dominated_by(b), "{} dominated in {}", a, t.name());
                }
            }
        }
    }
}
