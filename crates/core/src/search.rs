//! The iterative latency-refinement and partition-space searches
//! (paper §3.2, Figures 1 and 2).

use crate::arch::Architecture;
use crate::bounds::{max_area_partitions, max_latency, min_area_partitions, min_latency};
use crate::checkpoint::{
    fnv1a, Checkpoint, CheckpointPolicy, CheckpointRecord, CheckpointResult, CheckpointSink,
};
use crate::error::PartitionError;
use crate::model::{IlpModel, ModelOptions};
use crate::solution::Solution;
use crate::structured::{SearchGoal, SearchLimits, SearchOutcome, StructuredSolver};
use rtr_graph::{Latency, TaskGraph};
use rtr_milp::SolveOptions;
use rtr_trace::Instrument as _;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Times a panicking window solve or candidate bound is retried before its
/// subtree is abandoned and recorded in [`Degradation`].
const PANIC_RETRY_LIMIT: u32 = 2;

/// `sched.job` failpoint namespace for phase-2 candidate batches, disjoint
/// from the intra-window subtree batches (which use key namespace `0`) so
/// seeded faults draw independent decisions per batch kind.
const CANDIDATE_FAIL_KEY: u64 = 1 << 62;

/// The worker-thread count [`TemporalPartitioner::explore_parallel`] uses
/// when asked for `0` ("auto"): the `RTR_THREADS` environment variable if it
/// parses to a positive integer, otherwise
/// [`std::thread::available_parallelism`] (1 if that is unknown).
pub fn default_thread_count() -> usize {
    if let Ok(value) = std::env::var("RTR_THREADS") {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// What happened to one phase-2 candidate bound in
/// [`TemporalPartitioner::explore_parallel`].
enum CandidateSlot {
    /// No worker reached this bound (the time budget expired first, or a
    /// smaller bound was already proven dominated). The merge stops here,
    /// exactly where the sequential loop would have stopped.
    NotRun,
    /// The shared-incumbent skip rule fired: `MinLatency(N)` is at least the
    /// prefix bound `min(pivot, achieved latencies of smaller candidates)`,
    /// so the sequential loop provably breaks at or before this bound.
    Dominated,
    /// The bound was evaluated; its record stream, captured trace events,
    /// and degradation account are replayed by the merge in ascending-`N`
    /// order.
    Done {
        records: Vec<IterationRecord>,
        found: Option<(Solution, Latency)>,
        events: Vec<rtr_trace::Event>,
        error: Option<PartitionError>,
        degradation: Degradation,
    },
}

/// One piece of the search the resilience layer abandoned after its panic
/// retries ran out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LostSubtree {
    /// The failpoint / panic site, e.g. `explore.window` or
    /// `explore.candidate`.
    pub site: &'static str,
    /// Partition bound of the lost work.
    pub n: u32,
    /// Iteration within the bound; `0` when a whole candidate bound was
    /// lost rather than a single window.
    pub iteration: u32,
}

/// Honest account of what an exploration skipped while surviving worker
/// panics and checkpoint failures. With fault injection off and no bugs
/// triggered, every field is zero ([`is_clean`](Self::is_clean)) and the
/// exploration's outputs are bit-identical to a build without the
/// resilience layer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Degradation {
    /// Worker panics caught and contained (never propagated to callers).
    pub panics_caught: u64,
    /// Panicked jobs retried with the shared incumbent intact.
    pub jobs_retried: u64,
    /// Jobs abandoned after their retries ran out; their subtrees went
    /// unexplored, so the result is best-so-far, not exhaustive.
    pub subtrees_lost: u64,
    /// Checkpoint writes that failed (and were deferred to the next
    /// interval) — see [`CheckpointPolicy`].
    pub checkpoint_failures: u64,
    /// One entry per abandoned subtree, in the deterministic merge order.
    pub lost: Vec<LostSubtree>,
}

impl Degradation {
    /// `true` when nothing was caught, retried, lost, or deferred — the
    /// exploration behaved exactly as if the resilience layer were absent.
    pub fn is_clean(&self) -> bool {
        self.panics_caught == 0
            && self.jobs_retried == 0
            && self.subtrees_lost == 0
            && self.checkpoint_failures == 0
            && self.lost.is_empty()
    }

    /// Accumulates another account into this one (counters add, lost
    /// subtrees append in order).
    fn absorb(&mut self, other: Degradation) {
        self.panics_caught += other.panics_caught;
        self.jobs_retried += other.jobs_retried;
        self.subtrees_lost += other.subtrees_lost;
        self.checkpoint_failures += other.checkpoint_failures;
        self.lost.extend(other.lost);
    }

    /// Renders the account as a short, deterministic human-readable block
    /// (one header plus one line per lost subtree).
    pub fn render(&self) -> String {
        let mut out = format!(
            "degraded: panics_caught={} jobs_retried={} subtrees_lost={} checkpoint_failures={}",
            self.panics_caught, self.jobs_retried, self.subtrees_lost, self.checkpoint_failures
        );
        for lost in &self.lost {
            out.push_str(&format!(
                "\n  lost {} at N={} iteration={}",
                lost.site, lost.n, lost.iteration
            ));
        }
        out.push('\n');
        out
    }
}

/// Per-exploration resilience context threaded through the solve loops: a
/// read-only cache of checkpointed window solves to replay, and a sink to
/// stream completed windows into. Both absent on the plain
/// [`TemporalPartitioner::explore`] paths.
#[derive(Clone, Copy, Default)]
struct RunCtx<'a> {
    resume: Option<&'a BTreeMap<(u32, u32), CheckpointRecord>>,
    sink: Option<&'a CheckpointSink>,
}

/// Per-partition-bound warm-start state of the milp backend inside
/// `Reduce_Latency`: the ILP built once for the bound plus the root basis
/// of the latest solve, carried into the next (RHS-only-different) window.
struct MilpSession {
    ilp: IlpModel,
    basis: Option<rtr_milp::Basis>,
}

/// Which constraint-satisfaction engine `SolveModel()` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The specialized branch-and-bound of [`crate::structured`] — the
    /// scalable default (handles the paper's 32-task DCT).
    #[default]
    Structured,
    /// The faithful ILP formulation of [`crate::model`] solved by
    /// `rtr-milp` — the paper's CPLEX path; practical for small task graphs.
    Milp,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::Structured => "structured",
            Backend::Milp => "milp",
        })
    }
}

/// How `Reduce_Latency` tightens the window after a feasible solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefinementStrategy {
    /// Binary subdivision between the proven lower bound and the achieved
    /// latency — the paper's Figure 1 (default).
    #[default]
    Bisection,
    /// Aggressive descent: each round demands an improvement of at least
    /// `δ` (`D_max ← D_a − δ`) and stops at the first failure. Fewer
    /// solves, but a single hard window ends the refinement; measured by
    /// the `ablation_strategy` bench.
    AggressiveDescent,
}

impl fmt::Display for RefinementStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RefinementStrategy::Bisection => "bisection",
            RefinementStrategy::AggressiveDescent => "aggressive-descent",
        })
    }
}

/// Parameters of the exploration, mirroring the paper's user knobs.
#[derive(Debug, Clone)]
pub struct ExploreParams {
    /// Latency tolerance `δ`: the binary subdivision stops when the window
    /// shrinks below this.
    pub delta: Latency,
    /// Starting partition relaxation `α`: exploration starts at
    /// `N_min^l + α`.
    pub alpha: u32,
    /// Ending partition relaxation `γ`: exploration stops at `N_min^u + γ`.
    pub gamma: u32,
    /// Constraint-satisfaction backend.
    pub backend: Backend,
    /// Per-solve limits (structured backend).
    pub limits: SearchLimits,
    /// ILP model options (milp backend).
    pub model_options: ModelOptions,
    /// Per-solve limits (milp backend).
    pub milp_options: SolveOptions,
    /// Overall wall-clock budget — the paper's `TimeExpired()`.
    pub time_budget: Option<Duration>,
    /// Window-tightening strategy of `Reduce_Latency`.
    pub strategy: RefinementStrategy,
    /// Worker threads *inside* each structured window solve
    /// ([`StructuredSolver::run_parallel`]): `1` keeps the sequential
    /// search, `0` resolves via `RTR_THREADS` / available parallelism.
    /// Results are bit-identical at any value (limit-fired solves are
    /// best-effort, as on the sequential path), so this composes freely
    /// with [`TemporalPartitioner::explore_parallel`] — though nesting both
    /// multiplies thread counts.
    pub solver_threads: usize,
    /// Dominance-memoization table bound for the structured backend
    /// (`0` disables; [`crate::structured::DEFAULT_MEMO_LIMIT`] by
    /// default). Only node counts change with this knob, never results.
    pub memo_limit: usize,
}

impl Default for ExploreParams {
    fn default() -> Self {
        ExploreParams {
            delta: Latency::from_ns(100.0),
            alpha: 0,
            gamma: 1,
            backend: Backend::default(),
            limits: SearchLimits::default(),
            model_options: ModelOptions::default(),
            milp_options: SolveOptions::feasibility(),
            time_budget: Some(Duration::from_secs(600)),
            strategy: RefinementStrategy::default(),
            solver_threads: 1,
            memo_limit: crate::structured::DEFAULT_MEMO_LIMIT,
        }
    }
}

/// Outcome of one `SolveModel()` call.
#[derive(Debug, Clone, PartialEq)]
pub enum IterationResult {
    /// A constraint-satisfying solution with its recomputed latency.
    Feasible {
        /// `CalculateSolnLatency()` of the solution found.
        latency: Latency,
        /// Partitions actually used by that solution (`η ≤ N`).
        eta: u32,
    },
    /// The window was proven empty.
    Infeasible,
    /// A node/time limit fired before the window was decided; the search
    /// treats it like an infeasible window (it can only forgo improvements,
    /// never produce invalid output).
    LimitReached,
}

/// Backend solver statistics of one `SolveModel()` window. Exactly one of
/// the two options is populated, matching [`ExploreParams::backend`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowStats {
    /// Branch-and-bound statistics (milp backend).
    pub milp: Option<rtr_milp::SolveStats>,
    /// Structured-search statistics, summed over the (up to two) ordering
    /// attempts spent on this window (structured backend).
    pub structured: Option<crate::structured::SearchStats>,
}

/// One row of the paper's result tables: the window solved, the iteration
/// index, and what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationRecord {
    /// Partition bound `N` of this solve.
    pub n: u32,
    /// Iteration index `I` within this `N` (1-based).
    pub iteration: u32,
    /// Window upper bound `D_max` (absolute, including `N·C_T`).
    pub d_max: Latency,
    /// Window lower bound `D_min` (absolute, including `N·C_T`).
    pub d_min: Latency,
    /// What `SolveModel()` returned.
    pub result: IterationResult,
    /// Wall-clock time of the solve.
    pub elapsed: Duration,
    /// Backend solver statistics of this window.
    pub stats: WindowStats,
}

impl IterationRecord {
    /// `D_max` with the `N·C_T` reconfiguration overhead subtracted — the
    /// "Bound (without N×C_T)" column of the paper's tables.
    pub fn d_max_execution(&self, arch: &Architecture) -> Latency {
        self.d_max.saturating_sub(arch.reconfig_time() * self.n)
    }

    /// `D_min` with the `N·C_T` overhead subtracted.
    pub fn d_min_execution(&self, arch: &Architecture) -> Latency {
        self.d_min.saturating_sub(arch.reconfig_time() * self.n)
    }
}

/// Result of a full partition-space exploration.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// The best solution found, if any.
    pub best: Option<Solution>,
    /// Its total latency.
    pub best_latency: Option<Latency>,
    /// Every `SolveModel()` call, in order — the rows of the paper's tables.
    pub records: Vec<IterationRecord>,
    /// `N_min^l` for this instance.
    pub n_min_lower: u32,
    /// `N_min^u` for this instance.
    pub n_min_upper: u32,
    /// What the resilience layer caught, retried, or gave up on — all-zero
    /// ([`Degradation::is_clean`]) unless workers panicked or checkpoint
    /// writes failed.
    pub degradation: Degradation,
}

impl Exploration {
    /// Records grouped by partition bound, preserving order.
    pub fn records_for(&self, n: u32) -> impl Iterator<Item = &IterationRecord> {
        self.records.iter().filter(move |r| r.n == n)
    }

    /// Sum of the MILP branch-and-bound statistics over every recorded
    /// `SolveModel()` call (all-zero under the structured backend). These
    /// totals are what a trace report's `milp.*` counters aggregate to.
    pub fn milp_totals(&self) -> rtr_milp::SolveStats {
        let mut total = rtr_milp::SolveStats::default();
        for r in &self.records {
            if let Some(s) = &r.stats.milp {
                total.absorb(s);
            }
        }
        total
    }

    /// Sum of the structured-search statistics over every recorded
    /// `SolveModel()` call (all-zero under the milp backend).
    pub fn structured_totals(&self) -> crate::structured::SearchStats {
        // Neutral element for `absorb`, whose `exhausted` is an AND.
        let mut total = crate::structured::SearchStats { exhausted: true, ..Default::default() };
        for r in &self.records {
            if let Some(s) = &r.stats.structured {
                total.absorb(s);
            }
        }
        total
    }

    /// Serializes the refinement log as CSV (one row per `SolveModel()`
    /// call), convenient for plotting the paper-style tables.
    ///
    /// Columns: `n, iteration, d_min_ns, d_max_ns, result, latency_ns,
    /// eta`. `latency_ns` and `eta` are empty for infeasible rows.
    ///
    /// The output is deterministic: it carries no timing, so two
    /// explorations that made the same decisions serialize byte-identically
    /// regardless of machine load or thread count — the contract
    /// `tests/parallel_determinism.rs` locks in for
    /// [`TemporalPartitioner::explore_parallel`]. Use
    /// [`to_csv_timed`](Self::to_csv_timed) when per-solve wall-clock
    /// matters more than reproducibility.
    pub fn to_csv(&self) -> String {
        self.csv(false)
    }

    /// [`to_csv`](Self::to_csv) with a trailing `elapsed_us` column holding
    /// each solve's wall-clock time (not deterministic across runs).
    pub fn to_csv_timed(&self) -> String {
        self.csv(true)
    }

    fn csv(&self, timed: bool) -> String {
        let mut out = String::from("n,iteration,d_min_ns,d_max_ns,result,latency_ns,eta");
        if timed {
            out.push_str(",elapsed_us");
        }
        out.push('\n');
        for r in &self.records {
            let (result, latency, eta) = match &r.result {
                IterationResult::Feasible { latency, eta } => {
                    ("feasible", format!("{}", latency.as_ns()), eta.to_string())
                }
                IterationResult::Infeasible => ("infeasible", String::new(), String::new()),
                IterationResult::LimitReached => ("limit", String::new(), String::new()),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{}",
                r.n,
                r.iteration,
                r.d_min.as_ns(),
                r.d_max.as_ns(),
                result,
                latency,
                eta,
            ));
            if timed {
                out.push_str(&format!(",{}", r.elapsed.as_micros()));
            }
            out.push('\n');
        }
        out
    }
}

/// Emits one structured `search.iteration` trace event for `record` — the
/// streaming twin of the CSV row produced by [`Exploration::to_csv`]. The
/// `n` and `result` fields feed the run report's iterations-per-`N` and
/// window-outcome rollups.
fn emit_iteration_event(record: &IterationRecord) {
    // Publish the window outcome (and any improved latency) on the live
    // status board. This is a relaxed-atomic side effect, invisible to the
    // trace stream, so it runs even while events are being captured.
    let board = rtr_trace::status::board();
    match &record.result {
        IterationResult::Feasible { latency, .. } => {
            board.record_window(rtr_trace::WindowOutcome::Feasible);
            board.record_incumbent(latency.as_ns());
        }
        IterationResult::Infeasible => {
            board.record_window(rtr_trace::WindowOutcome::Infeasible);
        }
        IterationResult::LimitReached => {
            board.record_window(rtr_trace::WindowOutcome::LimitReached);
        }
    }
    rtr_trace::event("search.iteration", || {
        let mut fields: Vec<(String, rtr_trace::Value)> = vec![
            ("n".to_owned(), u64::from(record.n).into()),
            ("iteration".to_owned(), u64::from(record.iteration).into()),
            ("d_min_ns".to_owned(), record.d_min.as_ns().into()),
            ("d_max_ns".to_owned(), record.d_max.as_ns().into()),
            ("elapsed_us".to_owned(), record.elapsed.into()),
        ];
        match &record.result {
            IterationResult::Feasible { latency, eta } => {
                fields.push(("result".to_owned(), "feasible".into()));
                fields.push(("latency_ns".to_owned(), latency.as_ns().into()));
                fields.push(("eta".to_owned(), u64::from(*eta).into()));
            }
            IterationResult::Infeasible => {
                fields.push(("result".to_owned(), "infeasible".into()));
            }
            IterationResult::LimitReached => {
                fields.push(("result".to_owned(), "limit".into()));
            }
        }
        fields
    });
}

/// The temporal partitioning and design-space-exploration system.
///
/// # Examples
///
/// ```
/// use rtr_core::{TemporalPartitioner, Architecture, ExploreParams};
/// use rtr_graph::{TaskGraphBuilder, DesignPoint, Area, Latency};
///
/// # fn main() -> Result<(), rtr_core::PartitionError> {
/// let mut b = TaskGraphBuilder::new();
/// let a = b.add_task("a")
///     .design_point(DesignPoint::new("s", Area::new(50), Latency::from_ns(300.0)))
///     .design_point(DesignPoint::new("f", Area::new(90), Latency::from_ns(150.0)))
///     .finish();
/// let c = b.add_task("c")
///     .design_point(DesignPoint::new("s", Area::new(60), Latency::from_ns(250.0)))
///     .finish();
/// b.add_edge(a, c, 2).expect("fresh edge");
/// let graph = b.build().expect("valid graph");
///
/// let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(50.0));
/// let partitioner = TemporalPartitioner::new(&graph, &arch, ExploreParams::default())?;
/// let exploration = partitioner.explore()?;
/// let best = exploration.best.expect("this instance is feasible");
/// assert!(exploration.best_latency.unwrap() <= Latency::from_ns(600.0));
/// assert_eq!(best.partitions_used(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TemporalPartitioner<'g> {
    graph: &'g TaskGraph,
    arch: &'g Architecture,
    params: ExploreParams,
}

impl<'g> TemporalPartitioner<'g> {
    /// Creates a partitioner after checking that every task can fit the
    /// device at all.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError::TaskTooLarge`] if some task's smallest
    /// design point exceeds `R_max`.
    pub fn new(
        graph: &'g TaskGraph,
        arch: &'g Architecture,
        params: ExploreParams,
    ) -> Result<Self, PartitionError> {
        for task in graph.tasks() {
            if !task.design_points().iter().any(|dp| arch.admits(dp)) {
                return Err(PartitionError::TaskTooLarge {
                    task: task.name().to_owned(),
                    min_area: task.min_area_point().area().units(),
                    capacity: arch.resource_capacity().units(),
                });
            }
        }
        Ok(TemporalPartitioner { graph, arch, params })
    }

    /// The task graph being partitioned.
    pub fn graph(&self) -> &TaskGraph {
        self.graph
    }

    /// The target architecture.
    pub fn arch(&self) -> &Architecture {
        self.arch
    }

    /// The exploration parameters.
    pub fn params(&self) -> &ExploreParams {
        &self.params
    }

    /// One `SolveModel()` call: find any solution with total latency in
    /// `[d_min, d_max]` under partition bound `n`.
    ///
    /// # Errors
    ///
    /// Propagates model-building or MILP failures (milp backend only).
    pub fn solve_window(
        &self,
        n: u32,
        d_max: Latency,
        d_min: Latency,
    ) -> Result<(IterationResult, Option<Solution>), PartitionError> {
        self.solve_window_hinted(n, d_max, d_min, None)
    }

    /// [`solve_window`](Self::solve_window) with a warm-start hint: the
    /// structured backend tries the hint's placements first at every search
    /// node (local search around an incumbent).
    ///
    /// # Errors
    ///
    /// Propagates model-building or MILP failures (milp backend only).
    pub fn solve_window_hinted(
        &self,
        n: u32,
        d_max: Latency,
        d_min: Latency,
        hint: Option<&Solution>,
    ) -> Result<(IterationResult, Option<Solution>), PartitionError> {
        let (result, sol, _) = self.solve_window_traced(n, d_max, d_min, hint)?;
        Ok((result, sol))
    }

    /// [`solve_window_hinted`](Self::solve_window_hinted) that also returns
    /// the backend's solver statistics for the window.
    fn solve_window_traced(
        &self,
        n: u32,
        d_max: Latency,
        d_min: Latency,
        hint: Option<&Solution>,
    ) -> Result<(IterationResult, Option<Solution>, WindowStats), PartitionError> {
        match self.params.backend {
            Backend::Structured => {
                // Try the data-flow assignment order first; if the budget
                // runs out undecided, spend the same budget again on the
                // level order — the two explore different basins first.
                let half = SearchLimits {
                    node_limit: self.params.limits.node_limit / 2,
                    time_limit: self.params.limits.time_limit.map(|t| t / 2),
                };
                let mut outcome = SearchOutcome::LimitReached;
                // `absorb` ANDs `exhausted`, so the accumulator starts from
                // the neutral element `true`.
                let mut stats =
                    crate::structured::SearchStats { exhausted: true, ..Default::default() };
                for (order, use_hint) in [
                    // First attempt: local search around the incumbent.
                    (crate::structured::OrderHeuristic::DataFlow, true),
                    // Fallback: a fresh basin, unbiased by the hint.
                    (crate::structured::OrderHeuristic::Level, false),
                ] {
                    let mut solver = StructuredSolver::with_order(
                        self.graph,
                        self.arch,
                        n,
                        d_max.as_ns(),
                        SearchGoal::FirstFeasible,
                        half,
                        order,
                    )
                    .with_memo_limit(self.params.memo_limit);
                    if use_hint {
                        if let Some(hint) = hint {
                            solver = solver.with_hint(hint.placements().to_vec());
                        }
                    }
                    let (run_outcome, run_stats) = if self.params.solver_threads == 1 {
                        solver.run()
                    } else {
                        solver.run_parallel(self.params.solver_threads)
                    };
                    outcome = run_outcome;
                    stats.absorb(&run_stats);
                    if !matches!(outcome, SearchOutcome::LimitReached) {
                        break;
                    }
                }
                stats.emit_metrics("structured");
                let stats = WindowStats { milp: None, structured: Some(stats) };
                Ok(match outcome {
                    SearchOutcome::Feasible(sol) => {
                        let latency = sol.total_latency(self.graph, self.arch);
                        let eta = sol.partitions_used();
                        (IterationResult::Feasible { latency, eta }, Some(sol), stats)
                    }
                    SearchOutcome::Infeasible => (IterationResult::Infeasible, None, stats),
                    SearchOutcome::LimitReached => (IterationResult::LimitReached, None, stats),
                })
            }
            Backend::Milp => {
                let ilp = IlpModel::build(
                    self.graph,
                    self.arch,
                    n,
                    d_max,
                    d_min,
                    &self.params.model_options,
                )?;
                // `Model::solve` emits the `milp.solve` span and `milp.*`
                // counters itself; here we only capture the stats.
                let outcome = ilp.model().solve(&self.params.milp_options)?;
                Ok(self.decode_milp_outcome(&ilp, n, outcome))
            }
        }
    }

    /// Maps a MILP [`rtr_milp::Outcome`] of the window ILP back onto the
    /// search vocabulary, decoding the incumbent when there is one.
    fn decode_milp_outcome(
        &self,
        ilp: &IlpModel,
        n: u32,
        outcome: rtr_milp::Outcome,
    ) -> (IterationResult, Option<Solution>, WindowStats) {
        let stats = WindowStats { milp: Some(outcome.stats), structured: None };
        match outcome.status {
            rtr_milp::Status::Feasible | rtr_milp::Status::Optimal => {
                // A feasible/optimal status always carries an incumbent;
                // treat a missing one as an undecided window rather than
                // panicking on a solver invariant.
                let Some(assignment) = outcome.solution.as_ref() else {
                    return (IterationResult::LimitReached, None, stats);
                };
                let sol = ilp.decode(assignment).compacted(n);
                let latency = sol.total_latency(self.graph, self.arch);
                let eta = sol.partitions_used();
                (IterationResult::Feasible { latency, eta }, Some(sol), stats)
            }
            rtr_milp::Status::Infeasible => (IterationResult::Infeasible, None, stats),
            rtr_milp::Status::LimitReached | rtr_milp::Status::Unbounded => {
                (IterationResult::LimitReached, None, stats)
            }
        }
    }

    /// [`solve_window_traced`](Self::solve_window_traced) that chains the
    /// milp backend's window solves through one [`MilpSession`]: the ILP is
    /// built once per partition bound, each subsequent window moves only
    /// the latency-row right-hand sides
    /// ([`IlpModel::set_latency_window`]), and every solve warm-starts from
    /// the previous one's root basis. Falls through to the stateless path
    /// for the structured backend or when
    /// [`SolveOptions::warm_start`](rtr_milp::SolveOptions) is off.
    fn solve_window_in_session(
        &self,
        n: u32,
        d_max: Latency,
        d_min: Latency,
        hint: Option<&Solution>,
        session: &mut Option<MilpSession>,
    ) -> Result<(IterationResult, Option<Solution>, WindowStats), PartitionError> {
        if self.params.backend != Backend::Milp || !self.params.milp_options.warm_start {
            return self.solve_window_traced(n, d_max, d_min, hint);
        }
        let s = match session {
            Some(s) => {
                s.ilp.set_latency_window(d_max, d_min);
                s
            }
            None => session.insert(MilpSession {
                ilp: IlpModel::build(
                    self.graph,
                    self.arch,
                    n,
                    d_max,
                    d_min,
                    &self.params.model_options,
                )?,
                basis: None,
            }),
        };
        // Presolve would re-index rows under the chained basis, so session
        // solves run on the unreduced model (`solve_mip_warm` enforces the
        // same rule whenever a basis is supplied).
        let mut opts = self.params.milp_options.clone();
        opts.presolve = false;
        let mut outcome = rtr_milp::solve_mip_warm(s.ilp.model(), &opts, s.basis.as_ref())?;
        s.basis = outcome.root_basis.take();
        Ok(self.decode_milp_outcome(&s.ilp, n, outcome))
    }

    /// The paper's `Reduce_Latency(N, D_max, D_min)` (Figure 1): binary
    /// subdivision of the latency window down to tolerance `δ`. Returns the
    /// best solution found for this partition bound, if any, and appends one
    /// [`IterationRecord`] per solve to `records`.
    ///
    /// The paper's pseudo-code for re-tightening `D_max` after a feasible
    /// solution is garbled in the available text; we implement the behaviour
    /// its prose describes: a feasible solution's recomputed latency becomes
    /// the upper bound, an infeasible window's midpoint becomes the lower
    /// bound.
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn reduce_latency(
        &self,
        n: u32,
        d_max: Latency,
        d_min: Latency,
        records: &mut Vec<IterationRecord>,
    ) -> Result<Option<(Solution, Latency)>, PartitionError> {
        self.reduce_latency_ctx(
            n,
            d_max,
            d_min,
            records,
            &mut |_| {},
            RunCtx::default(),
            &mut Degradation::default(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn reduce_latency_ctx(
        &self,
        n: u32,
        d_max: Latency,
        d_min: Latency,
        records: &mut Vec<IterationRecord>,
        observer: &mut dyn FnMut(&IterationRecord),
        ctx: RunCtx<'_>,
        degradation: &mut Degradation,
    ) -> Result<Option<(Solution, Latency)>, PartitionError> {
        let _span = rtr_trace::span("search.reduce_latency").with("n", n);
        let delta = self.params.delta.as_ns().max(1e-9);
        let mut iteration = 0u32;
        // The subdivision's successive windows differ only in the latency
        // RHS, so the milp backend's solves chain through one session.
        let mut session: Option<MilpSession> = None;
        let mut solve = |d_max: Latency,
                         d_min: Latency,
                         hint: Option<&Solution>,
                         records: &mut Vec<IterationRecord>,
                         degradation: &mut Degradation|
         -> Result<(IterationResult, Option<Solution>), PartitionError> {
            iteration += 1;
            // Resume: answer the window from the checkpoint cache when its
            // key is present. The cached bounds must match this window
            // bit-for-bit — the exploration is deterministic, so a mismatch
            // means the checkpoint belongs to a different instance or
            // parameter set.
            if let Some(cache) = ctx.resume {
                if let Some(cached) = cache.get(&(n, iteration)) {
                    if cached.d_max_ns.to_bits() != d_max.as_ns().to_bits()
                        || cached.d_min_ns.to_bits() != d_min.as_ns().to_bits()
                    {
                        return Err(PartitionError::Checkpoint {
                            detail: format!(
                                "checkpoint window (n={n}, iteration={iteration}) was \
                                 [{}, {}] ns but this run needs [{}, {}] ns — wrong \
                                 checkpoint for this instance or parameters?",
                                cached.d_min_ns,
                                cached.d_max_ns,
                                d_min.as_ns(),
                                d_max.as_ns()
                            ),
                        });
                    }
                    let (result, sol) = cached.reconstruct(self.graph, self.arch)?;
                    let record = IterationRecord {
                        n,
                        iteration,
                        d_max,
                        d_min,
                        result: result.clone(),
                        elapsed: Duration::from_micros(cached.elapsed_us),
                        stats: WindowStats::default(),
                    };
                    emit_iteration_event(&record);
                    observer(&record);
                    if let Some(sink) = ctx.sink {
                        sink.record(cached.clone());
                    }
                    records.push(record);
                    return Ok((result, sol));
                }
            }
            let start = Instant::now();
            // Panic isolation: a panicking window solve (injected at the
            // `explore.window` failpoint, or a genuine backend bug) is
            // retried, then given up as a LimitReached window — the search
            // already treats undecided windows as "no improvement found",
            // so a lost window can only forgo improvements, never corrupt
            // the result. The milp warm-start session is dropped on panic:
            // it may have unwound mid-pivot.
            let mut attempt = 0u32;
            let (result, sol, stats) = loop {
                let key =
                    (u64::from(n) << 40) | (u64::from(iteration) << 8) | u64::from(attempt & 0xff);
                let solved = catch_unwind(AssertUnwindSafe(|| {
                    rtr_trace::failpoint::panic_if("explore.window", key);
                    self.solve_window_in_session(n, d_max, d_min, hint, &mut session)
                }));
                match solved {
                    Ok(outcome) => break outcome?,
                    Err(_) => {
                        degradation.panics_caught += 1;
                        session = None;
                        if attempt >= PANIC_RETRY_LIMIT {
                            degradation.subtrees_lost += 1;
                            degradation.lost.push(LostSubtree {
                                site: "explore.window",
                                n,
                                iteration,
                            });
                            break (IterationResult::LimitReached, None, WindowStats::default());
                        }
                        attempt += 1;
                        degradation.jobs_retried += 1;
                    }
                }
            };
            let record = IterationRecord {
                n,
                iteration,
                d_max,
                d_min,
                result: result.clone(),
                elapsed: start.elapsed(),
                stats,
            };
            emit_iteration_event(&record);
            observer(&record);
            if let Some(sink) = ctx.sink {
                sink.record(CheckpointRecord {
                    n,
                    iteration,
                    d_max_ns: d_max.as_ns(),
                    d_min_ns: d_min.as_ns(),
                    result: match (&result, &sol) {
                        (IterationResult::Feasible { latency, eta }, Some(sol)) => {
                            CheckpointResult::Feasible {
                                latency_ns: latency.as_ns(),
                                eta: *eta,
                                placements: sol
                                    .placements()
                                    .iter()
                                    .map(|p| (p.partition, p.design_point))
                                    .collect(),
                            }
                        }
                        (IterationResult::Infeasible, _) => CheckpointResult::Infeasible,
                        _ => CheckpointResult::LimitReached,
                    },
                    elapsed_us: record.elapsed.as_micros() as u64,
                });
            }
            records.push(record);
            Ok((result, sol))
        };

        // First solve over the full window.
        let (first, sol) = solve(d_max, d_min, None, records, degradation)?;
        let mut best = match (first, sol) {
            (IterationResult::Feasible { latency, .. }, Some(sol)) => (sol, latency),
            _ => return Ok(None),
        };

        let mut lower = d_min.as_ns();
        match self.params.strategy {
            RefinementStrategy::Bisection => {
                // The achieved latency is the effective upper bound from
                // here on.
                while best.1.as_ns() - lower >= delta {
                    let mid = Latency::from_ns((best.1.as_ns() + lower) / 2.0);
                    let (result, sol) =
                        solve(mid, Latency::from_ns(lower), Some(&best.0), records, degradation)?;
                    match (result, sol) {
                        (IterationResult::Feasible { latency, .. }, Some(sol)) => {
                            debug_assert!(latency <= mid + Latency::from_ns(1e-6));
                            best = (sol, latency);
                        }
                        _ => lower = mid.as_ns(),
                    }
                }
            }
            RefinementStrategy::AggressiveDescent => {
                while best.1.as_ns() - lower >= delta {
                    let target = Latency::from_ns(best.1.as_ns() - delta);
                    let (result, sol) = solve(
                        target,
                        Latency::from_ns(lower),
                        Some(&best.0),
                        records,
                        degradation,
                    )?;
                    match (result, sol) {
                        (IterationResult::Feasible { latency, .. }, Some(sol)) => {
                            best = (sol, latency);
                        }
                        _ => break,
                    }
                }
            }
        }
        Ok(Some(best))
    }

    /// `true` once the overall wall-clock budget (the paper's
    /// `TimeExpired()`) has run out.
    fn expired(&self, started: Instant) -> bool {
        match self.params.time_budget {
            Some(budget) => started.elapsed() >= budget,
            None => false,
        }
    }

    /// Phase 1 of `Refine_Partitions_Bound`: ascending `n` from `n_start`,
    /// solving the full `[MinLatency(n), MaxLatency(n)]` window at each
    /// bound until the first feasible one (or the cap / the time budget
    /// stops the climb). Returns the bound reached and the incumbent found
    /// there, if any.
    ///
    /// This phase is inherently sequential — bound `n + 1` is tried only
    /// because bound `n` failed — so both [`explore`](Self::explore) and
    /// [`explore_parallel`](Self::explore_parallel) run it on the calling
    /// thread.
    #[allow(clippy::too_many_arguments)]
    fn first_feasible(
        &self,
        n_start: u32,
        n_cap: u32,
        started: Instant,
        records: &mut Vec<IterationRecord>,
        observer: &mut dyn FnMut(&IterationRecord),
        ctx: RunCtx<'_>,
        degradation: &mut Degradation,
    ) -> Result<(u32, Option<(Solution, Latency)>), PartitionError> {
        let mut n = n_start;
        let mut best = self.reduce_latency_ctx(
            n,
            max_latency(self.graph, self.arch, n),
            min_latency(self.graph, self.arch, n),
            records,
            observer,
            ctx,
            degradation,
        )?;
        while best.is_none() && n < n_cap && !self.expired(started) {
            n += 1;
            best = self.reduce_latency_ctx(
                n,
                max_latency(self.graph, self.arch, n),
                min_latency(self.graph, self.arch, n),
                records,
                observer,
                ctx,
                degradation,
            )?;
        }
        Ok((n, best))
    }

    /// Evaluates one phase-2 candidate bound with candidate-level panic
    /// isolation (the `explore.candidate` site). Used verbatim by both the
    /// sequential relaxation loop and the parallel workers, so a degraded
    /// run reports the same [`Degradation`] at every thread count.
    #[allow(clippy::too_many_arguments)]
    fn run_candidate_isolated(
        &self,
        n: u32,
        pivot: Latency,
        d_min: Latency,
        records: &mut Vec<IterationRecord>,
        observer: &mut dyn FnMut(&IterationRecord),
        ctx: RunCtx<'_>,
        degradation: &mut Degradation,
    ) -> Result<Option<(Solution, Latency)>, PartitionError> {
        let mut attempt = 0u32;
        loop {
            let kept = records.len();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                rtr_trace::failpoint::panic_if(
                    "explore.candidate",
                    (u64::from(n) << 8) | u64::from(attempt & 0xff),
                );
                self.reduce_latency_ctx(n, pivot, d_min, records, observer, ctx, degradation)
            }));
            match caught {
                Ok(result) => return result,
                Err(_) => {
                    // Drop the aborted attempt's partial rows; the retry
                    // regenerates them from iteration 1.
                    records.truncate(kept);
                    degradation.panics_caught += 1;
                    if attempt >= PANIC_RETRY_LIMIT {
                        degradation.subtrees_lost += 1;
                        degradation.lost.push(LostSubtree {
                            site: "explore.candidate",
                            n,
                            iteration: 0,
                        });
                        return Ok(None);
                    }
                    attempt += 1;
                    degradation.jobs_retried += 1;
                }
            }
        }
    }

    /// The paper's `Refine_Partitions_Bound()` (Figure 2): explores
    /// partition bounds `N_min^l + α ..= N_min^u + γ`, running
    /// [`reduce_latency`](Self::reduce_latency) at each bound. Once a first
    /// feasible bound is found, every relaxed bound refines against that
    /// phase-1 incumbent (see [`explore_with_observer`](Self::explore_with_observer)
    /// for why), and the paper's early exit still stops the relaxation as
    /// soon as `MinLatency(N)` reaches the best latency achieved so far.
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn explore(&self) -> Result<Exploration, PartitionError> {
        self.explore_with_observer(|_| {})
    }

    /// [`explore`](Self::explore) with a progress observer: `observer` is
    /// called once per `SolveModel()` record, as it happens — useful for
    /// streaming UIs.
    ///
    /// Phase 2 anchors every relaxed bound's window at the phase-1
    /// incumbent `L1` rather than chaining each bound's achieved latency
    /// into the next bound's `D_max`. This makes the relaxed bounds
    /// independent of each other — the property
    /// [`explore_parallel`](Self::explore_parallel) exploits — and costs no
    /// solution quality: each bound still bisects to within `δ` of its own
    /// optimum, and a tighter chained window could only hide solutions that
    /// would not have improved the best anyway. The paper's early exit
    /// (`MinLatency(N) ≥ best`) still uses the running best, so dominated
    /// bounds are skipped exactly as in Figure 2.
    ///
    /// # Errors
    ///
    /// Propagates backend failures.
    pub fn explore_with_observer<F: FnMut(&IterationRecord)>(
        &self,
        mut observer: F,
    ) -> Result<Exploration, PartitionError> {
        self.explore_sequential_ctx(&mut observer, RunCtx::default())
    }

    fn explore_sequential_ctx(
        &self,
        observer: &mut dyn FnMut(&IterationRecord),
        ctx: RunCtx<'_>,
    ) -> Result<Exploration, PartitionError> {
        let mut span = rtr_trace::span("search.explore")
            .with("backend", self.params.backend.to_string())
            .with("tasks", self.graph.tasks().len());
        let n_min_lower = min_area_partitions(self.graph, self.arch);
        let n_min_upper = max_area_partitions(self.graph, self.arch);
        let n_cap = n_min_upper.max(n_min_lower).saturating_add(self.params.gamma);
        let started = Instant::now();

        let mut records = Vec::new();
        let mut degradation = Degradation::default();
        let n_start = (n_min_lower.saturating_add(self.params.alpha)).min(n_cap);

        // Phase 1: find the first feasible partition bound.
        let (mut n, mut best) = self.first_feasible(
            n_start,
            n_cap,
            started,
            &mut records,
            observer,
            ctx,
            &mut degradation,
        )?;

        // Phase 2: relax N looking for better solutions, each bound
        // refining against the phase-1 incumbent.
        if let Some(pivot) = best.as_ref().map(|(_, latency)| *latency) {
            let mut best_latency = pivot;
            while n < n_cap && !self.expired(started) {
                n += 1;
                let d_min = min_latency(self.graph, self.arch, n);
                if d_min >= best_latency {
                    // MinLatency(N) already exceeds the achieved latency:
                    // relaxation cannot help (paper's early exit).
                    break;
                }
                if let Some((sol, latency)) = self.run_candidate_isolated(
                    n,
                    pivot,
                    d_min,
                    &mut records,
                    observer,
                    ctx,
                    &mut degradation,
                )? {
                    if latency < best_latency {
                        best_latency = latency;
                        best = Some((sol, latency));
                    }
                }
            }
        }

        let (best, best_latency) = match best {
            Some((sol, latency)) => (Some(sol), Some(latency)),
            None => (None, None),
        };
        if span.armed() {
            span.add("solves", records.len());
            span.add("feasible", best.is_some());
            if let Some(latency) = best_latency {
                span.add("best_latency_ns", latency.as_ns());
            }
        }
        span.finish();
        Ok(self.finish_exploration(Exploration {
            best,
            best_latency,
            records,
            n_min_lower,
            n_min_upper,
            degradation,
        }))
    }

    /// Folds the structured backend's per-window resilience counters into
    /// the exploration-level [`Degradation`] and, when the run was not
    /// clean, emits the aggregate `resilience.*` counters and a
    /// `resilience.degraded` event (from the merging thread, so the trace
    /// stream stays deterministic).
    fn finish_exploration(&self, mut exploration: Exploration) -> Exploration {
        for r in &exploration.records {
            if let Some(s) = &r.stats.structured {
                exploration.degradation.panics_caught += s.panics_caught;
                exploration.degradation.jobs_retried += s.jobs_retried;
                exploration.degradation.subtrees_lost += s.subtrees_lost;
                for _ in 0..s.subtrees_lost {
                    exploration.degradation.lost.push(LostSubtree {
                        site: "search.job",
                        n: r.n,
                        iteration: r.iteration,
                    });
                }
            }
        }
        let d = &exploration.degradation;
        if !d.is_clean() {
            rtr_trace::counter("resilience.panics_caught", d.panics_caught);
            rtr_trace::counter("resilience.jobs_retried", d.jobs_retried);
            rtr_trace::counter("resilience.subtrees_lost", d.subtrees_lost);
            rtr_trace::event("resilience.degraded", || {
                vec![
                    ("panics_caught".to_owned(), d.panics_caught.into()),
                    ("jobs_retried".to_owned(), d.jobs_retried.into()),
                    ("subtrees_lost".to_owned(), d.subtrees_lost.into()),
                    ("checkpoint_failures".to_owned(), d.checkpoint_failures.into()),
                ]
            });
        }
        exploration
    }

    /// Fingerprint binding a checkpoint to this instance and to every
    /// parameter that shapes the exploration trajectory. Thread counts are
    /// deliberately excluded: the parallel merge is bit-identical to the
    /// sequential loop, so a checkpoint may be resumed at any `threads`.
    fn fingerprint(&self) -> u64 {
        let p = &self.params;
        let canon = format!(
            "graph={}|rmax={}|mem={}|ct_bits={}|env={:?}|sec={:?}|delta_bits={}|alpha={}|\
             gamma={}|backend={}|strategy={}|node_limit={}|time_limit={:?}|memo_limit={}",
            self.graph.to_text(),
            self.arch.resource_capacity().units(),
            self.arch.memory_capacity(),
            self.arch.reconfig_time().as_ns().to_bits(),
            self.arch.env_policy(),
            self.arch.secondary_capacities(),
            p.delta.as_ns().to_bits(),
            p.alpha,
            p.gamma,
            p.backend,
            p.strategy,
            p.limits.node_limit,
            p.limits.time_limit,
            p.memo_limit,
        );
        fnv1a(canon.as_bytes())
    }

    /// [`explore_parallel`](Self::explore_parallel) with checkpointing and
    /// resume.
    ///
    /// With a [`CheckpointPolicy`], every completed `SolveModel()` window
    /// is streamed into a versioned JSON checkpoint (atomic temp-file +
    /// rename writes, interval-gated, plus a final write when the
    /// exploration ends). With a resume [`Checkpoint`], windows whose
    /// `(N, iteration)` key is cached are answered from the checkpoint —
    /// validated against the feasibility checker first — instead of being
    /// solved again; because the exploration is deterministic, the resumed
    /// run's records, best solution, and [`Exploration::to_csv`] output are
    /// byte-identical to an uninterrupted run. `observer` is honored on the
    /// sequential path (`threads <= 1`) only.
    ///
    /// # Errors
    ///
    /// [`PartitionError::Checkpoint`] when the resume checkpoint does not
    /// match this instance and parameter set (fingerprint or window
    /// mismatch) or fails validation; otherwise as
    /// [`explore`](Self::explore).
    pub fn explore_resumable<F: FnMut(&IterationRecord)>(
        &self,
        threads: usize,
        policy: Option<&CheckpointPolicy>,
        resume: Option<&Checkpoint>,
        mut observer: F,
    ) -> Result<Exploration, PartitionError> {
        let fingerprint = self.fingerprint();
        let cache: Option<BTreeMap<(u32, u32), CheckpointRecord>> = match resume {
            Some(checkpoint) => {
                if checkpoint.fingerprint != fingerprint {
                    return Err(PartitionError::Checkpoint {
                        detail: format!(
                            "checkpoint fingerprint {:#018x} does not match this instance \
                             and parameter set ({:#018x})",
                            checkpoint.fingerprint, fingerprint
                        ),
                    });
                }
                Some(checkpoint.records.iter().map(|r| ((r.n, r.iteration), r.clone())).collect())
            }
            None => None,
        };
        let sink = policy.map(|p| CheckpointSink::new(p.clone(), fingerprint));
        let ctx = RunCtx { resume: cache.as_ref(), sink: sink.as_ref() };
        let threads = if threads == 0 { default_thread_count() } else { threads };
        let mut exploration = if threads <= 1 {
            self.explore_sequential_ctx(&mut observer, ctx)
        } else {
            self.explore_parallel_ctx(threads, ctx)
        }?;
        if let Some(sink) = &sink {
            sink.flush();
            exploration.degradation.checkpoint_failures = sink.failures();
        }
        Ok(exploration)
    }

    /// [`explore`](Self::explore) with the phase-2 candidate bounds
    /// evaluated concurrently on `threads` scoped worker threads.
    ///
    /// `threads == 0` resolves via [`default_thread_count`] (the
    /// `RTR_THREADS` environment variable, else the machine's available
    /// parallelism); `threads <= 1` delegates to the sequential
    /// [`explore`](Self::explore).
    ///
    /// Workers share an atomic incumbent latency: a candidate whose
    /// `MinLatency(N)` already exceeds the incumbent is checked against the
    /// order-safe prefix bound (the phase-1 incumbent combined with the
    /// achieved latencies of *smaller* candidates only) and, if still
    /// dominated, skipped without solving — the same bounds the sequential
    /// early exit would have refused to visit. A merge pass then replays
    /// per-candidate record streams and captured trace events in ascending
    /// `N` order, chaining the running best exactly like the sequential
    /// loop, so the returned [`Exploration`] — iteration order, chosen
    /// solution, [`Exploration::to_csv`] output, and the logical trace
    /// stream — is identical to [`explore`](Self::explore) regardless of
    /// thread count.
    ///
    /// The guarantee requires deterministic per-solve limits: with a
    /// wall-clock limit in [`SearchLimits`] or a tight
    /// [`ExploreParams::time_budget`], individual windows (or the whole
    /// relaxation) may time out at machine-dependent points on any path,
    /// sequential included.
    ///
    /// # Errors
    ///
    /// Propagates backend failures; when several candidates fail, the error
    /// of the smallest undominated bound is returned (matching what the
    /// sequential loop would have hit first).
    pub fn explore_parallel(&self, threads: usize) -> Result<Exploration, PartitionError> {
        let threads = if threads == 0 { default_thread_count() } else { threads };
        if threads <= 1 {
            return self.explore();
        }
        self.explore_parallel_ctx(threads, RunCtx::default())
    }

    fn explore_parallel_ctx(
        &self,
        threads: usize,
        ctx: RunCtx<'_>,
    ) -> Result<Exploration, PartitionError> {
        if threads <= 1 {
            return self.explore_sequential_ctx(&mut |_| {}, ctx);
        }
        // One work-stealing pool for the whole exploration: phase-2
        // candidate bounds and any nested window subtree batches share
        // this single `threads` budget (`Pool::with` reuses an ambient
        // pool when the caller is already inside one), so a stalled
        // window's jobs get stolen by idle workers instead of idling a
        // statically split sub-pool.
        rtr_sched::Pool::with(threads, |pool| self.explore_on_pool(pool, ctx))
    }

    fn explore_on_pool(
        &self,
        pool: &rtr_sched::Pool,
        ctx: RunCtx<'_>,
    ) -> Result<Exploration, PartitionError> {
        let threads = pool.threads();
        let mut span = rtr_trace::span("search.explore")
            .with("backend", self.params.backend.to_string())
            .with("tasks", self.graph.tasks().len())
            .with("threads", threads);
        let n_min_lower = min_area_partitions(self.graph, self.arch);
        let n_min_upper = max_area_partitions(self.graph, self.arch);
        let n_cap = n_min_upper.max(n_min_lower).saturating_add(self.params.gamma);
        let started = Instant::now();

        let mut records = Vec::new();
        let mut degradation = Degradation::default();
        let n_start = (n_min_lower.saturating_add(self.params.alpha)).min(n_cap);

        // Phase 1 (sequential by nature): find the first feasible bound.
        let (n1, mut best) = self.first_feasible(
            n_start,
            n_cap,
            started,
            &mut records,
            &mut |_| {},
            ctx,
            &mut degradation,
        )?;

        // Phase 2: fan the independent candidate bounds out to workers,
        // then merge in ascending-N order.
        if let Some(pivot) = best.as_ref().map(|(_, latency)| *latency) {
            let candidates: Vec<u32> = (n1 + 1..=n_cap).collect();
            let (slots, sched_report) = self.run_candidates(&candidates, pivot, pool, started, ctx);
            // Scheduler-level isolation totals are batch facts (a pure
            // function of the job list under seeded faults), absorbed here
            // unconditionally so they are never dropped by a merge break;
            // the per-candidate lost entries ride inside their slots.
            degradation.absorb(Degradation {
                panics_caught: sched_report.panics_caught,
                jobs_retried: sched_report.jobs_retried,
                ..Degradation::default()
            });
            let mut best_latency = pivot;
            for (slot, &n) in slots.into_iter().zip(&candidates) {
                let d_min = min_latency(self.graph, self.arch, n);
                if d_min >= best_latency {
                    // Same early exit as the sequential loop; any slots past
                    // this bound are discarded unseen.
                    break;
                }
                match slot {
                    CandidateSlot::Done {
                        records: candidate_records,
                        found,
                        events,
                        error,
                        degradation: candidate_degradation,
                    } => {
                        rtr_trace::dispatch_all(events);
                        records.extend(candidate_records);
                        degradation.absorb(candidate_degradation);
                        if let Some(error) = error {
                            return Err(error);
                        }
                        if let Some((sol, latency)) = found {
                            if latency < best_latency {
                                best_latency = latency;
                                best = Some((sol, latency));
                            }
                        }
                    }
                    CandidateSlot::Dominated => {
                        // The skip rule only fires when the prefix bound —
                        // never below the merge's running best — already
                        // dominates d_min, so this arm is unreachable.
                        debug_assert!(false, "skip rule fired at an undominated bound N={n}");
                        break;
                    }
                    // The time budget expired before a worker reached this
                    // bound: stop, as the sequential loop would have.
                    CandidateSlot::NotRun => break,
                }
            }
        }

        let (best, best_latency) = match best {
            Some((sol, latency)) => (Some(sol), Some(latency)),
            None => (None, None),
        };
        if span.armed() {
            span.add("solves", records.len());
            span.add("feasible", best.is_some());
            if let Some(latency) = best_latency {
                span.add("best_latency_ns", latency.as_ns());
            }
        }
        span.finish();
        Ok(self.finish_exploration(Exploration {
            best,
            best_latency,
            records,
            n_min_lower,
            n_min_upper,
            degradation,
        }))
    }

    /// Evaluates the phase-2 candidate bounds as one batch on the shared
    /// work-stealing pool and returns one [`CandidateSlot`] per candidate,
    /// index-aligned.
    ///
    /// Latencies travel through the atomics as IEEE-754 bits: for
    /// non-negative floats the bit pattern orders like the number, so
    /// `fetch_min` on bits is `fetch_min` on latencies.
    fn run_candidates(
        &self,
        candidates: &[u32],
        pivot: Latency,
        pool: &rtr_sched::Pool,
        started: Instant,
        ctx: RunCtx<'_>,
    ) -> (Vec<CandidateSlot>, rtr_sched::BatchReport) {
        let slots: Vec<Mutex<CandidateSlot>> =
            candidates.iter().map(|_| Mutex::new(CandidateSlot::NotRun)).collect();
        // Best latency achieved anywhere so far, phase 1 included. Purely a
        // pruning accelerator: correctness rests on the prefix confirmation
        // below, so stale reads are harmless.
        let incumbent = AtomicU64::new(pivot.as_ns().to_bits());
        // Per-candidate achieved latency (+∞ until that bound finds one).
        let achieved: Vec<AtomicU64> =
            candidates.iter().map(|_| AtomicU64::new(f64::INFINITY.to_bits())).collect();
        // Smallest bound proven dominated; the merge can never get past it,
        // so larger bounds need not run at all.
        let stop_at = AtomicU32::new(u32::MAX);
        // The pool's FIFO injector hands indices out in ascending-N order —
        // the same claim discipline the bespoke pool's atomic cursor had.
        let report = pool.run(candidates.len(), CANDIDATE_FAIL_KEY, |idx| {
            let n = candidates[idx];
            if self.expired(started) {
                // Slot stays NotRun: the merge stops here, exactly where
                // the sequential loop's budget check would.
                return;
            }
            if n >= stop_at.load(Ordering::Relaxed) {
                return;
            }
            let d_min = min_latency(self.graph, self.arch, n);
            // Shared-incumbent pruning: the cheap global test may reflect
            // achievements of *larger* bounds the sequential order could
            // not have seen, so a hit must be confirmed against the
            // order-safe prefix bound before skipping.
            if d_min.as_ns() >= f64::from_bits(incumbent.load(Ordering::Relaxed)) {
                let prefix = achieved[..idx]
                    .iter()
                    .map(|a| f64::from_bits(a.load(Ordering::Relaxed)))
                    .fold(pivot.as_ns(), f64::min);
                if d_min.as_ns() >= prefix {
                    stop_at.fetch_min(n, Ordering::Relaxed);
                    *slots[idx].lock().unwrap_or_else(PoisonError::into_inner) =
                        CandidateSlot::Dominated;
                    return;
                }
            }
            let mut candidate_records = Vec::new();
            let mut degradation = Degradation::default();
            // The candidate- and window-level panic isolation lives inside
            // run_candidate_isolated, which the sequential loop shares —
            // and inside the capture closure, because capture is not
            // panic-safe.
            let (result, events) = rtr_trace::capture(|| {
                self.run_candidate_isolated(
                    n,
                    pivot,
                    d_min,
                    &mut candidate_records,
                    &mut |_| {},
                    ctx,
                    &mut degradation,
                )
            });
            let (found, error) = match result {
                Ok(found) => (found, None),
                Err(error) => (None, Some(error)),
            };
            if let Some((_, latency)) = &found {
                let bits = latency.as_ns().to_bits();
                achieved[idx].store(bits, Ordering::Relaxed);
                incumbent.fetch_min(bits, Ordering::Relaxed);
            }
            *slots[idx].lock().unwrap_or_else(PoisonError::into_inner) = CandidateSlot::Done {
                records: candidate_records,
                found,
                events,
                error,
                degradation,
            };
        });
        let mut slots: Vec<CandidateSlot> = slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect();
        // A candidate the scheduler abandoned (every `sched.job` attempt
        // panicked) must become a *degraded* Done: leaving it NotRun would
        // make the merge mistake it for a time-budget stop. The report is
        // a pure function of the job list, so this rewrite is as
        // deterministic as the faults themselves.
        for &idx in &report.lost {
            let mut degradation = Degradation::default();
            degradation.subtrees_lost += 1;
            degradation.lost.push(LostSubtree {
                site: "sched.job",
                n: candidates[idx],
                iteration: 0,
            });
            slots[idx] = CandidateSlot::Done {
                records: Vec::new(),
                found: None,
                events: Vec::new(),
                error: None,
                degradation,
            };
        }
        (slots, report)
    }
}

/// Compile-time proof that the partitioner can be shared across the scoped
/// workers of [`TemporalPartitioner::explore_parallel`] and that
/// per-candidate results can move back to the merging thread.
#[allow(dead_code)]
fn assert_thread_safe() {
    fn sync<T: Sync>() {}
    fn send<T: Send>() {}
    sync::<TemporalPartitioner<'static>>();
    sync::<ExploreParams>();
    send::<IterationRecord>();
    send::<Exploration>();
    send::<Solution>();
    send::<PartitionError>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_solution;
    use rtr_graph::{Area, DesignPoint, TaskGraphBuilder};

    fn dp(name: &str, area: u64, lat: f64) -> DesignPoint {
        DesignPoint::new(name, Area::new(area), Latency::from_ns(lat))
    }

    /// Chain of 3 tasks, each with a slow-small and fast-big point.
    fn chain3() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let mut prev = None;
        for i in 0..3 {
            let t = b
                .add_task(format!("t{i}"))
                .design_point(dp("s", 40, 400.0))
                .design_point(dp("f", 80, 180.0))
                .finish();
            if let Some(p) = prev {
                b.add_edge(p, t, 1).unwrap();
            }
            prev = Some(t);
        }
        b.build().unwrap()
    }

    #[test]
    fn explore_finds_validated_optimum_small_ct() {
        let g = chain3();
        // Capacity 100: two slow tasks share a partition (80) or one fast (80).
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(20.0));
        let params =
            ExploreParams { delta: Latency::from_ns(10.0), gamma: 2, ..Default::default() };
        let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
        let ex = part.explore().unwrap();
        let best = ex.best.expect("feasible");
        assert!(validate_solution(&g, &arch, &best).is_empty());
        // All-fast needs 3 partitions: 3*180 + 3*20 = 600.
        // (Each partition fits one fast task only.)
        let lat = ex.best_latency.unwrap().as_ns();
        assert!((lat - 600.0).abs() < 10.0 + 1e-6, "latency {lat}");
    }

    #[test]
    fn explore_prefers_fewer_partitions_with_huge_ct() {
        let g = chain3();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ms(1.0));
        let params = ExploreParams { delta: Latency::from_ns(10.0), ..Default::default() };
        let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
        let ex = part.explore().unwrap();
        let best = ex.best.clone().expect("feasible");
        // N_min^l = ceil(120/100) = 2: two partitions minimum; with C_T = 1 ms
        // per reconfiguration, 2 partitions beat 3 despite slower points.
        assert_eq!(best.partitions_used(), 2);
        // Phase 2 must stop early: MinLatency(3) > achieved.
        let relaxed: Vec<_> = ex.records_for(3).collect();
        assert!(relaxed.is_empty(), "no N=3 solve should run: {relaxed:?}");
    }

    #[test]
    fn backends_agree() {
        let g = chain3();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(20.0));
        let mut results = Vec::new();
        for backend in [Backend::Structured, Backend::Milp] {
            let params = ExploreParams {
                delta: Latency::from_ns(10.0),
                gamma: 2,
                backend,
                ..Default::default()
            };
            let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
            let ex = part.explore().unwrap();
            results.push(ex.best_latency.expect("feasible").as_ns());
        }
        assert!(
            (results[0] - results[1]).abs() < 10.0 + 1e-6,
            "structured {} vs milp {}",
            results[0],
            results[1]
        );
    }

    #[test]
    fn milp_warm_sessions_match_cold_solves_with_fewer_pivots() {
        let g = chain3();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(20.0));
        let run = |warm: bool| {
            let params = ExploreParams {
                delta: Latency::from_ns(10.0),
                gamma: 2,
                backend: Backend::Milp,
                // Presolve off on both sides so warm starting is the only
                // difference between the two runs.
                milp_options: SolveOptions {
                    warm_start: warm,
                    presolve: false,
                    ..SolveOptions::feasibility()
                },
                ..Default::default()
            };
            let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
            part.explore().unwrap()
        };
        let warm = run(true);
        let cold = run(false);
        // A warm node LP may sit down on a different optimal vertex of a
        // degenerate relaxation than a cold one, steering branch and bound
        // to a different — equally feasible — incumbent inside a window, so
        // trajectories are not compared row by row. The refinement *result*
        // must agree to within the bisection tolerance δ.
        let (w, c) =
            (warm.best_latency.expect("feasible").as_ns(), cold.best_latency.expect("feasible"));
        assert!((w - c.as_ns()).abs() <= 10.0 + 1e-6, "warm {w} vs cold {c:?}");
        assert!(validate_solution(&g, &arch, warm.best.as_ref().unwrap()).is_empty());
        assert!(validate_solution(&g, &arch, cold.best.as_ref().unwrap()).is_empty());
        // The warm run chained bases across the subdivision windows; the
        // cold run never did.
        let wt = warm.milp_totals();
        let ct = cold.milp_totals();
        assert!(wt.warm_starts > 0, "no warm solves recorded: {wt:?}");
        assert_eq!(ct.warm_starts, 0, "cold run must not warm start: {ct:?}");
    }

    #[test]
    fn records_form_table_rows() {
        let g = chain3();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(20.0));
        let part = TemporalPartitioner::new(&g, &arch, Default::default()).unwrap();
        let ex = part.explore().unwrap();
        assert!(!ex.records.is_empty());
        for r in &ex.records {
            assert!(r.d_min <= r.d_max);
            assert!(r.iteration >= 1);
            if let IterationResult::Feasible { latency, .. } = r.result {
                assert!(latency <= r.d_max + Latency::from_ns(1e-6));
            }
            // The execution-only bounds subtract N*C_T.
            assert!(r.d_max_execution(&arch) <= r.d_max);
        }
    }

    #[test]
    fn oversized_task_rejected_at_construction() {
        let mut b = TaskGraphBuilder::new();
        b.add_task("huge").design_point(dp("m", 1000, 1.0)).finish();
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(1.0));
        assert!(matches!(
            TemporalPartitioner::new(&g, &arch, Default::default()),
            Err(PartitionError::TaskTooLarge { .. })
        ));
    }

    #[test]
    fn aggressive_descent_reaches_the_same_optimum_on_decidable_instances() {
        let g = chain3();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(20.0));
        let mut results = Vec::new();
        for strategy in [RefinementStrategy::Bisection, RefinementStrategy::AggressiveDescent] {
            let params = ExploreParams {
                delta: Latency::from_ns(10.0),
                gamma: 2,
                strategy,
                ..Default::default()
            };
            let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
            let ex = part.explore().unwrap();
            results.push(ex.best_latency.unwrap().as_ns());
        }
        // Both strategies converge within δ of each other on an instance
        // where every window is decided.
        assert!((results[0] - results[1]).abs() <= 10.0 + 1e-6, "{results:?}");
        assert_eq!(RefinementStrategy::AggressiveDescent.to_string(), "aggressive-descent");
    }

    #[test]
    fn smaller_delta_never_worse() {
        let g = chain3();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(20.0));
        let run = |delta: f64| {
            let params =
                ExploreParams { delta: Latency::from_ns(delta), gamma: 2, ..Default::default() };
            let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
            let ex = part.explore().unwrap();
            (ex.best_latency.unwrap().as_ns(), ex.records.len())
        };
        let (coarse, coarse_iters) = run(500.0);
        let (fine, fine_iters) = run(5.0);
        assert!(fine <= coarse + 1e-6);
        assert!(fine_iters >= coarse_iters, "finer δ explores at least as much");
    }

    #[test]
    fn observer_sees_every_record_in_order() {
        let g = chain3();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(20.0));
        let part = TemporalPartitioner::new(&g, &arch, Default::default()).unwrap();
        let mut seen = Vec::new();
        let ex = part.explore_with_observer(|r| seen.push((r.n, r.iteration))).unwrap();
        let expected: Vec<(u32, u32)> = ex.records.iter().map(|r| (r.n, r.iteration)).collect();
        assert_eq!(seen, expected);
        assert!(!seen.is_empty());
    }

    #[test]
    fn csv_export_has_one_row_per_solve() {
        let g = chain3();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(20.0));
        let part = TemporalPartitioner::new(&g, &arch, Default::default()).unwrap();
        let ex = part.explore().unwrap();
        let csv = ex.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "n,iteration,d_min_ns,d_max_ns,result,latency_ns,eta");
        assert_eq!(csv.lines().count(), ex.records.len() + 1);
        for (line, r) in lines.zip(&ex.records) {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 7);
            assert_eq!(fields[0], r.n.to_string());
            match &r.result {
                IterationResult::Feasible { .. } => assert_eq!(fields[4], "feasible"),
                IterationResult::Infeasible => assert_eq!(fields[4], "infeasible"),
                IterationResult::LimitReached => assert_eq!(fields[4], "limit"),
            }
        }
        // The timed variant appends exactly one elapsed_us column.
        let timed = ex.to_csv_timed();
        let mut timed_lines = timed.lines();
        assert_eq!(
            timed_lines.next().unwrap(),
            "n,iteration,d_min_ns,d_max_ns,result,latency_ns,eta,elapsed_us"
        );
        for (timed_line, line) in timed_lines.zip(csv.lines().skip(1)) {
            assert!(timed_line.starts_with(line));
            assert_eq!(timed_line.split(',').count(), 8);
        }
    }

    #[test]
    fn parallel_explore_matches_sequential_bit_for_bit() {
        let g = chain3();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(20.0));
        let params = ExploreParams {
            delta: Latency::from_ns(10.0),
            gamma: 2,
            time_budget: None,
            ..Default::default()
        };
        let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
        let sequential = part.explore().unwrap();
        for threads in [1, 2, 4, 8] {
            let parallel = part.explore_parallel(threads).unwrap();
            assert_eq!(parallel.to_csv(), sequential.to_csv(), "threads={threads}");
            assert_eq!(parallel.best_latency, sequential.best_latency, "threads={threads}");
            assert_eq!(parallel.best, sequential.best, "threads={threads}");
            assert_eq!(parallel.n_min_lower, sequential.n_min_lower);
            assert_eq!(parallel.n_min_upper, sequential.n_min_upper);
        }
    }

    #[test]
    fn parallel_explore_skips_dominated_bounds_like_the_sequential_early_exit() {
        let g = chain3();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ms(1.0));
        let params = ExploreParams {
            delta: Latency::from_ns(10.0),
            time_budget: None,
            ..Default::default()
        };
        let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
        let ex = part.explore_parallel(4).unwrap();
        // With C_T = 1 ms the relaxed bound N=3 is dominated and must not be
        // solved on the parallel path either.
        assert_eq!(ex.best.as_ref().unwrap().partitions_used(), 2);
        assert!(ex.records_for(3).next().is_none());
    }

    #[test]
    fn parallel_explore_auto_thread_count_resolves() {
        let g = chain3();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(20.0));
        let params = ExploreParams { time_budget: None, gamma: 2, ..Default::default() };
        let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
        // threads == 0 resolves via default_thread_count (env or machine).
        let ex = part.explore_parallel(0).unwrap();
        assert!(ex.best.is_some());
        assert!(default_thread_count() >= 1);
    }

    #[test]
    fn zero_time_budget_parallel_still_reports_first_bound() {
        let g = chain3();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(20.0));
        let params = ExploreParams { time_budget: Some(Duration::ZERO), ..Default::default() };
        let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
        let ex = part.explore_parallel(4).unwrap();
        // Phase 1's first reduce_latency runs; no worker starts a candidate,
        // and the expired exploration still surfaces the incumbent.
        assert!(ex.best.is_some());
        assert!(ex.records.iter().all(|r| r.n == ex.records[0].n));
    }

    #[test]
    fn records_for_filters_by_bound() {
        let g = chain3();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(20.0));
        let params = ExploreParams { gamma: 2, ..Default::default() };
        let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
        let ex = part.explore().unwrap();
        let total: usize = (0..20).map(|n| ex.records_for(n).count()).sum();
        assert_eq!(total, ex.records.len());
        for n in 0..20 {
            assert!(ex.records_for(n).all(|r| r.n == n));
        }
    }

    #[test]
    fn hint_makes_the_seeded_window_cheap() {
        let g = chain3();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(20.0));
        let part = TemporalPartitioner::new(&g, &arch, Default::default()).unwrap();
        // Find any solution, then re-solve a window that the hint satisfies.
        let d_max = max_latency(&g, &arch, 3);
        let (_, sol) = part.solve_window(3, d_max, Latency::ZERO).unwrap();
        let sol = sol.expect("feasible");
        let target = sol.total_latency(&g, &arch);
        let (result, hinted) =
            part.solve_window_hinted(3, target, Latency::ZERO, Some(&sol)).unwrap();
        assert!(matches!(result, IterationResult::Feasible { .. }));
        // The hint itself satisfies the window, so it must be recovered (or
        // bettered).
        assert!(hinted.unwrap().total_latency(&g, &arch) <= target + Latency::from_ns(1e-6));
    }

    #[test]
    fn zero_time_budget_still_reports_first_bound() {
        let g = chain3();
        let arch = Architecture::new(Area::new(100), 64, Latency::from_ns(20.0));
        let params = ExploreParams { time_budget: Some(Duration::ZERO), ..Default::default() };
        let part = TemporalPartitioner::new(&g, &arch, params).unwrap();
        // The first reduce_latency still runs; the relaxation loop does not.
        let ex = part.explore().unwrap();
        assert!(ex.records.iter().all(|r| r.n == ex.records[0].n));
    }
}
