//! Quickstart: partition a small pipeline for a run-time reconfigurable
//! device and simulate the result.
//!
//! Run with `cargo run --release --example quickstart`.

use rtrpart::graph::{Area, DesignPoint, Latency, TaskGraphBuilder};
use rtrpart::{Architecture, ExploreParams, TemporalPartitioner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-stage image pipeline; every stage has area/latency alternatives
    // from a synthesis estimator.
    let mut b = TaskGraphBuilder::new();
    let capture = b
        .add_task("capture")
        .design_point(DesignPoint::new("slim", Area::new(90), Latency::from_ns(700.0)))
        .design_point(DesignPoint::new("wide", Area::new(170), Latency::from_ns(300.0)))
        .env_input(16)
        .finish();
    let filter = b
        .add_task("filter")
        .design_point(DesignPoint::new("serial", Area::new(140), Latency::from_ns(1200.0)))
        .design_point(DesignPoint::new("unrolled", Area::new(380), Latency::from_ns(450.0)))
        .finish();
    let transform = b
        .add_task("transform")
        .design_point(DesignPoint::new("serial", Area::new(160), Latency::from_ns(900.0)))
        .design_point(DesignPoint::new("pipelined", Area::new(320), Latency::from_ns(380.0)))
        .finish();
    let encode = b
        .add_task("encode")
        .design_point(DesignPoint::new("only", Area::new(200), Latency::from_ns(600.0)))
        .env_output(8)
        .finish();
    b.add_edge(capture, filter, 16)?;
    b.add_edge(filter, transform, 16)?;
    b.add_edge(transform, encode, 16)?;
    let graph = b.build()?;

    // A device that fits roughly two slim stages per configuration, with a
    // fast (time-multiplexed) reconfiguration.
    let arch = Architecture::new(Area::new(400), 64, Latency::from_us(2.0));

    println!("== exploring ==");
    let partitioner = TemporalPartitioner::new(&graph, &arch, ExploreParams::default())?;
    let exploration = partitioner.explore()?;
    for r in &exploration.records {
        println!(
            "N={} I={} window [{} .. {}] -> {:?}",
            r.n, r.iteration, r.d_min, r.d_max, r.result
        );
    }

    let best = exploration.best.expect("this instance is feasible");
    println!("\n== best solution ==");
    println!("{}", best.summary(&graph, &arch));

    println!("\n== simulated timeline ==");
    let report = rtrpart::sim::simulate(&graph, &arch, &best)?;
    println!("{}", report.timeline());
    assert_eq!(report.total_latency, exploration.best_latency.unwrap());
    Ok(())
}
