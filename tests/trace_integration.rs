//! Tracing integration with the solver stack: observer ordering, the
//! disabled-path purity guarantee, and agreement between trace-report
//! totals and the solver's own statistics. These tests install the
//! process-global sink, so they serialize on a mutex.

use rtrpart::graph::{Area, Latency};
use rtrpart::trace::{MemorySink, RunReport};
use rtrpart::workloads::dct::dct_4x4;
use rtrpart::workloads::random::{random_layered, RandomGraphParams};
use rtrpart::{
    Architecture, Backend, Exploration, ExploreParams, IterationResult, SearchLimits,
    TemporalPartitioner,
};
use std::sync::{Arc, Mutex};

/// Serializes tests that touch the process-global sink.
static GUARD: Mutex<()> = Mutex::new(());

/// Deterministic exploration parameters: node limits only, no wall-clock
/// cutoffs, so repeated runs visit exactly the same search tree.
fn deterministic_params() -> ExploreParams {
    ExploreParams {
        delta: Latency::from_ns(400.0),
        gamma: 1,
        limits: SearchLimits { node_limit: 2_000_000, time_limit: None },
        time_budget: None,
        ..Default::default()
    }
}

/// The semantic content of an exploration, excluding wall-clock fields.
fn fingerprint(ex: &Exploration) -> impl PartialEq + std::fmt::Debug {
    let records: Vec<_> =
        ex.records.iter().map(|r| (r.n, r.iteration, r.d_min, r.d_max, r.result.clone())).collect();
    let best = ex.best.as_ref().map(|b| format!("{b:?}"));
    (records, best, ex.best_latency)
}

/// Running with tracing enabled returns bit-identical results to the
/// uninstrumented run: instrumentation observes, never steers.
#[test]
fn tracing_does_not_perturb_exploration() {
    let _guard = GUARD.lock().unwrap();
    let graph = dct_4x4();
    let arch = Architecture::new(Area::new(1024), 512, Latency::from_us(1.0));

    let plain = TemporalPartitioner::new(&graph, &arch, deterministic_params())
        .expect("tasks fit")
        .explore()
        .expect("exploration runs");

    let sink = Arc::new(MemorySink::new());
    rtrpart::trace::install(sink.clone());
    let traced = TemporalPartitioner::new(&graph, &arch, deterministic_params())
        .expect("tasks fit")
        .explore()
        .expect("exploration runs");
    rtrpart::trace::uninstall();

    assert!(!sink.is_empty(), "the traced run must actually emit events");
    assert_eq!(fingerprint(&plain), fingerprint(&traced));
}

/// The observer sees every iteration, in order, and the trace carries one
/// `search.iteration` event per observed record.
#[test]
fn observer_and_trace_agree_on_iterations() {
    let _guard = GUARD.lock().unwrap();
    let graph = dct_4x4();
    let arch = Architecture::new(Area::new(1024), 512, Latency::from_us(1.0));
    let part = TemporalPartitioner::new(&graph, &arch, deterministic_params()).expect("tasks fit");

    let sink = Arc::new(MemorySink::new());
    rtrpart::trace::install(sink.clone());
    let mut observed: Vec<(u32, u32)> = Vec::new();
    let ex = part
        .explore_with_observer(|r| observed.push((r.n, r.iteration)))
        .expect("exploration runs");
    rtrpart::trace::uninstall();

    // Observer callbacks mirror the record list exactly, in order.
    let recorded: Vec<(u32, u32)> = ex.records.iter().map(|r| (r.n, r.iteration)).collect();
    assert_eq!(observed, recorded);

    // One search.iteration event per record, in emission order, with the
    // same (n, iteration) labels.
    let events = sink.take();
    let emitted: Vec<(u32, u32)> = events
        .iter()
        .filter(|e| e.name == "search.iteration")
        .map(|e| {
            (
                e.u64_field("n").expect("n field") as u32,
                e.u64_field("iteration").expect("iteration field") as u32,
            )
        })
        .collect();
    assert_eq!(emitted, recorded);

    // The report's per-N rollup matches a direct count over the records.
    let report = RunReport::from_events(&events);
    for (n, count) in &report.iterations_per_n {
        let direct = ex.records.iter().filter(|r| u64::from(r.n) == *n).count() as u64;
        assert_eq!(*count, direct, "N = {n}");
    }
    let feasible =
        ex.records.iter().filter(|r| matches!(r.result, IterationResult::Feasible { .. })).count()
            as u64;
    assert_eq!(report.outcomes.get("feasible").copied().unwrap_or(0), feasible);
}

/// Trace-report MILP totals agree with the solver's own `SolveStats`
/// accumulation over the exploration.
#[test]
fn milp_trace_totals_match_solve_stats() {
    let _guard = GUARD.lock().unwrap();
    let graph = random_layered(3, &RandomGraphParams { tasks: 6, ..Default::default() });
    let arch = Architecture::new(Area::new(300), 64, Latency::from_us(1.0));
    let params = ExploreParams {
        delta: Latency::from_ns(100.0),
        backend: Backend::Milp,
        time_budget: None,
        ..Default::default()
    };
    let part = TemporalPartitioner::new(&graph, &arch, params).expect("tasks fit");

    let sink = Arc::new(MemorySink::new());
    rtrpart::trace::install(sink.clone());
    let ex = part.explore().expect("exploration runs");
    rtrpart::trace::uninstall();

    let totals = ex.milp_totals();
    assert!(totals.nodes > 0, "the MILP backend must have solved something");

    let report = RunReport::from_events(&sink.take());
    assert_eq!(report.counter("milp.nodes"), totals.nodes as u64);
    assert_eq!(report.counter("milp.pivots"), totals.simplex_iterations as u64);
    assert_eq!(report.counter("milp.nodes_pruned"), totals.nodes_pruned as u64);
    assert_eq!(report.counter("milp.infeasible_nodes"), totals.infeasible_nodes as u64);
}

/// The structured backend's window stats also survive into the trace.
#[test]
fn structured_trace_totals_match_search_stats() {
    let _guard = GUARD.lock().unwrap();
    let graph = dct_4x4();
    let arch = Architecture::new(Area::new(1024), 512, Latency::from_us(1.0));
    let part = TemporalPartitioner::new(&graph, &arch, deterministic_params()).expect("tasks fit");

    let sink = Arc::new(MemorySink::new());
    rtrpart::trace::install(sink.clone());
    let ex = part.explore().expect("exploration runs");
    rtrpart::trace::uninstall();

    let totals = ex.structured_totals();
    assert!(totals.nodes > 0);

    let report = RunReport::from_events(&sink.take());
    assert_eq!(report.counter("structured.nodes"), totals.nodes);
    assert_eq!(report.counter("structured.latency_prunes"), totals.latency_prunes);
    assert_eq!(report.counter("structured.area_prunes"), totals.area_prunes);
    assert_eq!(report.counter("structured.memory_rejects"), totals.memory_rejects);
}
