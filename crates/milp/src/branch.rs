//! Branch and bound over the LP relaxation, with root cutting planes and
//! reliability-initialized pseudo-cost branching.

use crate::cuts::CutPool;
use crate::error::MilpError;
use crate::model::{effective_bounds, Model, Sense, VarKind};
use crate::simplex::{resolve_lp_priced, solve_lp_priced, Basis, LpStatus};
use crate::solution::{Goal, Outcome, Solution, SolveOptions, SolveStats, Status};
use rtr_trace::Instrument as _;
use std::rc::Rc;
use std::time::Instant;

/// Maximum root cut-separation rounds.
const MAX_CUT_ROUNDS: usize = 5;
/// A variable's pseudo-cost direction is *reliable* once it has this many
/// recorded observations; unreliable candidates get strong-branched first.
const RELIABILITY: u32 = 4;
/// Strong-branch at most this many candidates per node.
const STRONG_BRANCH_CANDS: usize = 8;
/// Simplex iteration cap for each strong-branch child LP.
const STRONG_BRANCH_ITERS: usize = 100;
/// Floor for pseudo-cost scores in the product rule, so a zero-degradation
/// direction never wipes out the other direction's signal.
const PC_EPS: f64 = 1e-6;

/// Solves a mixed-integer model by branch and bound.
///
/// In `Goal::Feasibility` mode (see [`SolveOptions`](crate::SolveOptions)) the search returns as soon as any
/// integer-feasible point is found — the paper's `SolveModel()` use of the
/// ILP. In `Goal::Optimal` mode the search prunes on the incumbent bound
/// and only stops when the tree is exhausted (or a limit fires).
///
/// With `options.warm_start` (the default) every child node's LP re-solves
/// from its parent's optimal basis by dual simplex — branching only
/// tightens one variable's bounds, which leaves that basis dual feasible —
/// and falls back to a cold start on any trouble, so the search outcome is
/// independent of the flag.
///
/// When a [`rtr_trace`] sink is installed, each solve closes one
/// `milp.solve` span and emits its [`SolveStats`] as `milp.*` counters
/// (including the `milp.lp.*` warm-start counters). Tracing never changes
/// the search: the same pivots and branches happen with a sink installed,
/// absent, or disabled.
///
/// # Errors
///
/// Propagates [`MilpError`] from model validation or a simplex failure.
pub fn solve_mip(model: &Model, options: &SolveOptions) -> Result<Outcome, MilpError> {
    solve_mip_warm(model, options, None)
}

/// [`solve_mip`] with an optional warm-start basis for the *root* LP,
/// produced by a previous solve of the same model after a bounds- or
/// RHS-only mutation (the paper's binary-subdivision loop re-solves).
///
/// Supplying a basis skips presolve: the basis indexes the unreduced
/// model's rows, and row removal would silently invalidate it. A stale or
/// unusable basis degrades to a cold root solve — results never change.
///
/// # Errors
///
/// Propagates [`MilpError`] like [`solve_mip`].
pub fn solve_mip_warm(
    model: &Model,
    options: &SolveOptions,
    root_basis: Option<&Basis>,
) -> Result<Outcome, MilpError> {
    let span = rtr_trace::span("milp.solve")
        .with("vars", model.vars.len())
        .with("rows", model.constraints.len());
    let outcome = if options.presolve && root_basis.is_none() {
        match crate::presolve::presolve(model) {
            crate::presolve::PresolveOutcome::Reduced(reduced, pstats) => {
                let mut inner = options.clone();
                inner.presolve = false;
                let mut outcome = branch_and_bound(&reduced, &inner, None)?;
                outcome.stats.presolve_tightened_bounds = pstats.tightened_bounds;
                outcome.stats.presolve_removed_rows = pstats.removed_rows;
                // The root basis indexes the reduced row space; it cannot
                // seed a re-solve of the original model.
                outcome.root_basis = None;
                outcome
            }
            crate::presolve::PresolveOutcome::Infeasible => Outcome {
                status: Status::Infeasible,
                solution: None,
                stats: SolveStats::default(),
                root_basis: None,
            },
        }
    } else {
        branch_and_bound(model, options, root_basis)?
    };
    if rtr_trace::enabled() {
        outcome.stats.emit_metrics("milp");
        span.with("status", outcome.status.to_string())
            .with("nodes", outcome.stats.nodes as u64)
            .finish();
    }
    Ok(outcome)
}

/// A branch-and-bound node: its bound box plus the parent LP's optimal
/// basis (shared between sibling children).
struct Node {
    bounds: Vec<(f64, f64)>,
    parent_basis: Option<Rc<Basis>>,
    /// Parent LP objective in minimization terms — this node's dual bound.
    bound: f64,
    /// `(variable, fractional distance to the branched bound, went up)` of
    /// the branching that created this node; feeds pseudo-cost updates.
    branch: Option<(usize, f64, bool)>,
}

/// Per-variable pseudo-costs: average objective degradation per unit of
/// fractional distance, kept separately for the up and down directions and
/// keyed by variable index (deterministic across runs by construction).
struct PseudoCosts {
    down_sum: Vec<f64>,
    down_n: Vec<u32>,
    up_sum: Vec<f64>,
    up_n: Vec<u32>,
}

impl PseudoCosts {
    fn new(n: usize) -> Self {
        PseudoCosts {
            down_sum: vec![0.0; n],
            down_n: vec![0; n],
            up_sum: vec![0.0; n],
            up_n: vec![0; n],
        }
    }

    fn record(&mut self, j: usize, up: bool, per_unit: f64) {
        if up {
            self.up_sum[j] += per_unit;
            self.up_n[j] += 1;
        } else {
            self.down_sum[j] += per_unit;
            self.down_n[j] += 1;
        }
    }

    /// Average degradation per unit fraction, `None` with no observations.
    fn cost(&self, j: usize, up: bool) -> Option<f64> {
        let (sum, n) =
            if up { (self.up_sum[j], self.up_n[j]) } else { (self.down_sum[j], self.down_n[j]) };
        (n > 0).then(|| sum / f64::from(n))
    }

    fn reliable(&self, j: usize) -> bool {
        self.down_n[j].min(self.up_n[j]) >= RELIABILITY
    }
}

/// The branch-and-bound core, run on an (optionally presolved) model.
fn branch_and_bound(
    model: &Model,
    options: &SolveOptions,
    root_basis: Option<&Basis>,
) -> Result<Outcome, MilpError> {
    let start = Instant::now();
    let int_vars: Vec<usize> = model.integer_vars().map(|v| v.index()).collect();
    let minimize_sign = match model.sense {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    let root_bounds: Vec<(f64, f64)> = model
        .vars
        .iter()
        .map(|v| {
            let (lo, hi) = effective_bounds(v);
            if matches!(v.kind, VarKind::Integer | VarKind::Binary) {
                (lo.ceil(), hi.floor())
            } else {
                (lo, hi)
            }
        })
        .collect();

    let mut stats = SolveStats::default();
    let mut incumbent: Option<Solution> = None;
    // Incumbent objective in minimization terms.
    let mut incumbent_obj = f64::INFINITY;
    let mut stack: Vec<Node> = vec![Node {
        bounds: root_bounds.clone(),
        parent_basis: root_basis.map(|b| Rc::new(b.clone())),
        bound: f64::NEG_INFINITY,
        branch: None,
    }];
    let mut saw_limit = false;
    let mut root_unbounded = false;
    let mut first_node = true;
    // Pivot-price baseline: the most expensive LP solved in this tree so
    // far (the root LP of a cold-started run; in a warm-rooted tree, the
    // priciest warm solve — still a lower bound on the cold-start price at
    // this model size, so the savings estimate stays conservative). A node
    // never claims savings against its own price: the baseline is updated
    // after the node is charged.
    let mut price_baseline = 0usize;
    let mut outcome_root_basis: Option<Basis> = None;
    // Root cutting planes: the pool plus the current working model (base +
    // active cut rows). `None` until the first committed cut round; cuts
    // are separated from root bounds, so they stay valid tree-wide and
    // every descendant node LP solves the augmented model.
    let mut pool = CutPool::new();
    let mut augmented: Option<Model> = None;
    let mut pc = PseudoCosts::new(model.vars.len());
    // Cuts and pseudo-cost machinery aim at proving bounds; the paper's
    // feasibility hot path keeps the historical cut-free, most-fractional
    // search (and its node counts) untouched.
    let use_cuts = options.cuts && options.goal == Goal::Optimal && !int_vars.is_empty();
    let use_pc = options.pseudo_cost_branching && options.goal == Goal::Optimal;
    // Dual bound of the node a limit interrupted, for the final gap.
    let mut broken_bound = f64::INFINITY;

    // Solve-wide pivot budget: pivots remaining before
    // `options.pivot_limit` is exhausted (`usize::MAX` with no budget).
    let pivots_left = |stats: &SolveStats| -> usize {
        if options.pivot_limit == 0 {
            usize::MAX
        } else {
            options.pivot_limit.saturating_sub(stats.simplex_iterations)
        }
    };
    // Per-LP iteration cap honouring both the user's per-LP limit and the
    // remaining budget. With a budget and no per-LP limit the remainder
    // replaces the automatic anti-cycling cap: a cycling LP then burns the
    // budget and stops the solve instead of erroring, which is the right
    // failure mode for a budgeted run.
    let lp_cap = |stats: &SolveStats| -> usize {
        let left = pivots_left(stats);
        if left == usize::MAX {
            options.lp_iteration_limit
        } else if options.lp_iteration_limit == 0 {
            left
        } else {
            options.lp_iteration_limit.min(left)
        }
    };
    // When this holds, an [`MilpError::IterationLimit`] from an LP solved
    // at `lp_cap` means the solve-wide budget ran dry (the budget remainder
    // was the binding cap), not that the LP failed: the solve stops with a
    // limit status and the budget is charged in full.
    let budget_bound = |stats: &SolveStats| -> bool {
        options.pivot_limit != 0
            && (options.lp_iteration_limit == 0 || pivots_left(stats) < options.lp_iteration_limit)
    };

    while let Some(Node { bounds, parent_basis, bound, branch: came_from }) = stack.pop() {
        if stats.nodes >= options.node_limit || pivots_left(&stats) == 0 {
            saw_limit = true;
            broken_bound = bound;
            break;
        }
        if let Some(limit) = options.time_limit {
            if start.elapsed() >= limit {
                saw_limit = true;
                broken_bound = bound;
                break;
            }
        }
        stats.nodes += 1;

        // The parent's LP objective already bounds this node: when the
        // incumbent dominates it, prune without solving the LP at all.
        if incumbent.is_some() && bound >= incumbent_obj - 1e-9 {
            stats.nodes_pruned += 1;
            continue;
        }

        let deadline = options.time_limit.map(|t| start + t);
        let lp_start = Instant::now();
        let warm_basis = if options.warm_start { parent_basis.as_deref() } else { None };
        let smodel: &Model = augmented.as_ref().unwrap_or(model);
        let cap = lp_cap(&stats);
        let budget_was_binding = budget_bound(&stats);
        let lp = match warm_basis {
            Some(basis) => resolve_lp_priced(
                smodel,
                Some(&bounds),
                basis,
                options.lp_tol,
                cap,
                deadline,
                options.pricing,
            ),
            None => solve_lp_priced(
                smodel,
                Some(&bounds),
                options.lp_tol,
                cap,
                deadline,
                options.pricing,
            ),
        };
        let lp = match lp {
            Ok(lp) => lp,
            Err(MilpError::IterationLimit { .. }) if budget_was_binding => {
                // The node LP consumed the remaining pivot budget: charge
                // it in full and stop like any other limit.
                stats.lp_time += lp_start.elapsed();
                stats.simplex_iterations = options.pivot_limit;
                saw_limit = true;
                broken_bound = bound;
                break;
            }
            Err(e) => return Err(e),
        };
        stats.lp_time += lp_start.elapsed();
        stats.simplex_iterations += lp.iterations;
        stats.refactorizations += lp.refactorizations;
        stats.devex_resets += lp.devex_resets;
        if lp.warm {
            stats.warm_starts += 1;
            stats.pivots_saved += price_baseline.saturating_sub(lp.iterations);
        } else {
            stats.cold_starts += 1;
        }
        price_baseline = price_baseline.max(lp.iterations);
        let is_root = std::mem::take(&mut first_node);
        if is_root {
            // Captured before any cut is added: the basis must index the
            // unaugmented model so a later bounds/RHS-only re-solve of the
            // caller's model (the paper's subdivision chain) can warm from
            // it.
            outcome_root_basis = lp.basis.clone();
        }
        match lp.status {
            LpStatus::Infeasible => {
                stats.infeasible_nodes += 1;
                continue;
            }
            LpStatus::Interrupted => {
                saw_limit = true;
                broken_bound = bound;
                break;
            }
            LpStatus::Unbounded => {
                // With bounded integer variables, unboundedness comes from
                // continuous directions and already holds at the root.
                if is_root {
                    root_unbounded = true;
                    break;
                }
                continue;
            }
            LpStatus::Optimal => {}
        }
        let mut lp = lp;

        // Root cutting-plane loop: separate cover/clique cuts on the base
        // rows and Gomory mixed-integer cuts on the fractional root basis,
        // then re-solve the augmented root. Cut rows only ever exclude
        // fractional points, so an infeasible augmented LP proves *integer*
        // infeasibility of the node (here: the whole model).
        if is_root && use_cuts {
            let mut cut_proved_infeasible = false;
            for round in 0..MAX_CUT_ROUNDS {
                // Fault injection for the separation site: a tripped
                // failpoint skips the round, leaving the pool and the
                // working model exactly as they were.
                if rtr_trace::failpoint::failpoint("milp.cut_separation", round as u64) {
                    continue;
                }
                let Some(basis) = lp.basis.as_ref() else { break };
                let work: &Model = augmented.as_ref().unwrap_or(model);
                let res =
                    pool.separate(model, work, &root_bounds, basis, options.lp_tol, &lp.values);
                stats.cuts_generated += res.total();
                if res.gomory > 0 {
                    stats.gomory_rounds += 1;
                }
                let stale = pool.age_cuts(&lp.values);
                let dropped = stale.len();
                pool.remove(&stale);
                if res.total() == 0 && dropped == 0 {
                    break;
                }
                // Rebuild base + pool and re-solve the root cold. A cold
                // solve makes dropping any cut row unconditionally safe (no
                // basis references the removed rows) and its cost is
                // bounded by MAX_CUT_ROUNDS root LPs.
                let mut work_next = model.clone();
                pool.append_rows(&mut work_next);
                if pivots_left(&stats) == 0 {
                    saw_limit = true;
                    break;
                }
                let re_cap = lp_cap(&stats);
                let re_budget_was_binding = budget_bound(&stats);
                let re_start = Instant::now();
                let relp = match solve_lp_priced(
                    &work_next,
                    Some(&root_bounds),
                    options.lp_tol,
                    re_cap,
                    deadline,
                    options.pricing,
                ) {
                    Ok(relp) => relp,
                    Err(MilpError::IterationLimit { .. }) if re_budget_was_binding => {
                        stats.lp_time += re_start.elapsed();
                        stats.simplex_iterations = options.pivot_limit;
                        saw_limit = true;
                        break;
                    }
                    Err(e) => return Err(e),
                };
                stats.lp_time += re_start.elapsed();
                stats.simplex_iterations += relp.iterations;
                stats.refactorizations += relp.refactorizations;
                stats.devex_resets += relp.devex_resets;
                stats.cold_starts += 1;
                match relp.status {
                    LpStatus::Optimal => {
                        augmented = Some(work_next);
                        lp = relp;
                    }
                    LpStatus::Infeasible => {
                        cut_proved_infeasible = true;
                        break;
                    }
                    LpStatus::Interrupted => {
                        saw_limit = true;
                        break;
                    }
                    LpStatus::Unbounded => break,
                }
            }
            stats.cuts_active = pool.active();
            if cut_proved_infeasible {
                stats.infeasible_nodes += 1;
                continue;
            }
            if saw_limit {
                broken_bound = bound;
                break;
            }
        }

        let lp_obj_min = minimize_sign * lp.objective;

        // Feed the parent's branching outcome into the pseudo-costs: the
        // LP objective degradation per unit of fractional distance.
        if use_pc {
            if let Some((j, frac, up)) = came_from {
                if frac > options.int_tol {
                    let per_unit = ((lp_obj_min - bound) / frac).max(0.0);
                    if per_unit.is_finite() {
                        pc.record(j, up, per_unit);
                    }
                }
            }
        }

        if incumbent.is_some() && lp_obj_min >= incumbent_obj - 1e-9 {
            stats.nodes_pruned += 1;
            continue; // dominated by the incumbent
        }

        // Rounding heuristic: at the root, try the nearest integer point.
        if is_root && options.rounding_heuristic && !int_vars.is_empty() {
            let mut rounded = lp.values.clone();
            for &j in &int_vars {
                rounded[j] = rounded[j].round().clamp(bounds[j].0, bounds[j].1);
            }
            if model.is_feasible_point(&rounded, options.int_tol.max(options.lp_tol)) {
                let objective = model.objective.eval(&rounded);
                let obj_min = minimize_sign * objective;
                if obj_min < incumbent_obj {
                    incumbent_obj = obj_min;
                    incumbent = Some(Solution { values: rounded, objective });
                    if options.goal == Goal::Feasibility {
                        break;
                    }
                }
            }
        }

        // Fractional branching candidates, ascending variable index.
        let mut cands: Vec<(usize, f64)> = Vec::new(); // (var, LP value)
        for &j in &int_vars {
            let v = lp.values[j];
            if (v - v.round()).abs() > options.int_tol {
                cands.push((j, v));
            }
        }

        if cands.is_empty() {
            // Integer feasible. Defensively re-check the point against
            // the raw constraints before accepting it as an incumbent:
            // a simplex numerical failure must never surface as a bogus
            // "feasible" answer.
            let mut values = lp.values.clone();
            for &j in &int_vars {
                values[j] = values[j].round();
            }
            if !model.is_feasible_point(&values, 1e-5) {
                continue;
            }
            let objective = model.objective.eval(&values);
            let obj_min = minimize_sign * objective;
            if obj_min < incumbent_obj {
                incumbent_obj = obj_min;
                incumbent = Some(Solution { values, objective });
            }
            if options.goal == Goal::Feasibility {
                break;
            }
            continue;
        }

        // Reliability initialization: strong-branch the most fractional
        // candidates whose pseudo-costs have too few observations, seeding
        // the tables with the observed LP degradations. Every probe LP is
        // iteration-capped and warm-started from this node's basis.
        if use_pc {
            let smodel: &Model = augmented.as_ref().unwrap_or(model);
            let mut order: Vec<usize> = (0..cands.len()).collect();
            order.sort_by(|&a, &b| {
                let fa = (cands[a].1 - cands[a].1.floor() - 0.5).abs();
                let fb = (cands[b].1 - cands[b].1.floor() - 0.5).abs();
                fa.total_cmp(&fb).then(cands[a].0.cmp(&cands[b].0))
            });
            let mut probed = 0usize;
            for &ci in &order {
                if probed >= STRONG_BRANCH_CANDS {
                    break;
                }
                // Probes are a bounded investment; never let them be the
                // LP that drains the last of the pivot budget.
                if pivots_left(&stats) <= 2 * STRONG_BRANCH_ITERS {
                    break;
                }
                let (j, v) = cands[ci];
                if pc.reliable(j) {
                    continue;
                }
                probed += 1;
                let floor = v.floor();
                for up in [false, true] {
                    let frac = if up { floor + 1.0 - v } else { v - floor };
                    if frac <= options.int_tol {
                        continue;
                    }
                    let mut cb = bounds.clone();
                    if up {
                        cb[j].0 = cb[j].0.max(floor + 1.0);
                    } else {
                        cb[j].1 = cb[j].1.min(floor);
                    }
                    stats.strong_branch_evals += 1;
                    let sb_start = Instant::now();
                    let probe = match lp.basis.as_ref() {
                        Some(b) => resolve_lp_priced(
                            smodel,
                            Some(&cb),
                            b,
                            options.lp_tol,
                            STRONG_BRANCH_ITERS,
                            deadline,
                            options.pricing,
                        ),
                        None => solve_lp_priced(
                            smodel,
                            Some(&cb),
                            options.lp_tol,
                            STRONG_BRANCH_ITERS,
                            deadline,
                            options.pricing,
                        ),
                    };
                    let sb = match probe {
                        Ok(sb) => sb,
                        // The tight per-probe pivot cap is an intended
                        // truncation: running out of iterations makes the
                        // probe uninformative, not the solve a failure.
                        Err(MilpError::IterationLimit { .. }) => {
                            stats.lp_time += sb_start.elapsed();
                            continue;
                        }
                        Err(e) => return Err(e),
                    };
                    stats.lp_time += sb_start.elapsed();
                    stats.simplex_iterations += sb.iterations;
                    stats.refactorizations += sb.refactorizations;
                    stats.devex_resets += sb.devex_resets;
                    if sb.status == LpStatus::Optimal {
                        let per_unit =
                            ((minimize_sign * sb.objective - lp_obj_min) / frac).max(0.0);
                        if per_unit.is_finite() {
                            pc.record(j, up, per_unit);
                        }
                    }
                    // Infeasible/interrupted probes carry no degradation
                    // information; the table is left untouched.
                }
            }
        }

        // Pseudo-cost product rule. With an empty table every direction
        // falls back to unit cost, and the score reduces to
        // frac·(1 − frac) — exactly the historical most-fractional rule —
        // so feasibility solves (which never record costs) are unchanged.
        let mut choice = cands[0];
        let mut choice_score = f64::NEG_INFINITY;
        let mut choice_reliable = false;
        for &(j, v) in &cands {
            let f_down = v - v.floor();
            let f_up = 1.0 - f_down;
            let (c_down, c_up) =
                if use_pc { (pc.cost(j, false), pc.cost(j, true)) } else { (None, None) };
            let d_down = c_down.unwrap_or(1.0) * f_down;
            let d_up = c_up.unwrap_or(1.0) * f_up;
            let score = d_down.max(PC_EPS) * d_up.max(PC_EPS);
            if score > choice_score {
                choice_score = score;
                choice = (j, v);
                choice_reliable = c_down.is_some() && c_up.is_some();
            }
        }
        if choice_reliable {
            stats.pseudo_cost_branches += 1;
        }

        let (j, v) = choice;
        let floor = v.floor();
        let mut down = bounds.clone();
        down[j].1 = down[j].1.min(floor);
        let mut up = bounds;
        up[j].0 = up[j].0.max(floor + 1.0);
        // Both children warm-start from this node's optimal basis:
        // the only change is one variable's bound, which leaves the
        // basis dual feasible.
        let child_basis = lp.basis.map(Rc::new);
        let down = Node {
            bounds: down,
            parent_basis: child_basis.clone(),
            bound: lp_obj_min,
            branch: Some((j, v - floor, false)),
        };
        let up = Node {
            bounds: up,
            parent_basis: child_basis,
            bound: lp_obj_min,
            branch: Some((j, floor + 1.0 - v, true)),
        };
        // Explore the nearer branch first (depth-first).
        if v - floor <= 0.5 {
            stack.push(up);
            stack.push(down);
        } else {
            stack.push(down);
            stack.push(up);
        }
    }

    let status = if root_unbounded {
        Status::Unbounded
    } else {
        match (&incumbent, saw_limit, options.goal) {
            (Some(_), false, Goal::Optimal) => Status::Optimal,
            (Some(_), _, _) => Status::Feasible,
            (None, true, _) => Status::LimitReached,
            (None, false, _) => Status::Infeasible,
        }
    };
    // Final relative gap (ppm): incumbent vs the best dual bound still
    // open (the remaining stack plus the node a limit interrupted). An
    // exhausted tree has bound +inf — gap 0, matching the proven statuses.
    stats.gap_ppm = match status {
        Status::Optimal | Status::Infeasible | Status::Unbounded => 0,
        _ if incumbent.is_none() => 1_000_000,
        _ => {
            let open = stack.iter().map(|n| n.bound).fold(broken_bound, f64::min);
            if open == f64::INFINITY {
                0
            } else if open == f64::NEG_INFINITY {
                1_000_000
            } else {
                let denom = incumbent_obj.abs().max(1e-9);
                let rel = ((incumbent_obj - open).max(0.0) / denom).min(1.0);
                (rel * 1e6).round() as usize
            }
        }
    };
    Ok(Outcome { status, solution: incumbent, stats, root_basis: outcome_root_basis })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Constraint, LinExpr, Rel, Variable};
    use std::time::Duration;

    #[test]
    fn knapsack_optimal() {
        // max 10a + 13b + 7c s.t. 5a + 6b + 4c <= 10, binaries.
        // Best: b + c = 20, a + c = 17, a + b -> 11 > 10 infeasible. So {b, c} = 20.
        let mut m = Model::new();
        let a = m.add_var(Variable::binary());
        let b = m.add_var(Variable::binary());
        let c = m.add_var(Variable::binary());
        m.add_constraint(Constraint::new(
            LinExpr::new() + (5.0, a) + (6.0, b) + (4.0, c),
            Rel::Le,
            10.0,
        ));
        m.maximize(LinExpr::new() + (10.0, a) + (13.0, b) + (7.0, c));
        let out = m.solve(&SolveOptions::optimal()).unwrap();
        assert_eq!(out.status, Status::Optimal);
        let sol = out.solution.unwrap();
        assert_eq!(sol.objective, 20.0);
        assert_eq!(sol.int_value(a), 0);
        assert_eq!(sol.int_value(b), 1);
        assert_eq!(sol.int_value(c), 1);
    }

    #[test]
    fn integer_rounding_gap() {
        // max x s.t. 2x <= 5, x integer -> 2 (LP gives 2.5).
        let mut m = Model::new();
        let x = m.add_var(Variable::integer(0.0, 10.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (2.0, x), Rel::Le, 5.0));
        m.maximize(LinExpr::new() + (1.0, x));
        let out = m.solve(&SolveOptions::optimal()).unwrap();
        assert_eq!(out.status, Status::Optimal);
        assert_eq!(out.solution.unwrap().objective, 2.0);
    }

    #[test]
    fn infeasible_integer_model() {
        // 0.4 <= x <= 0.6, x integer: LP feasible, IP infeasible.
        let mut m = Model::new();
        let x = m.add_var(Variable::integer(0.0, 1.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Ge, 0.4));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Le, 0.6));
        let out = m.solve(&SolveOptions::feasibility()).unwrap();
        assert_eq!(out.status, Status::Infeasible);
        assert!(out.solution.is_none());
    }

    #[test]
    fn feasibility_mode_stops_at_first_solution() {
        // A model with many feasible points; feasibility mode should explore
        // very few nodes.
        let mut m = Model::new();
        let vars: Vec<_> = (0..12).map(|_| m.add_var(Variable::binary())).collect();
        let sum: LinExpr = vars.iter().map(|&v| (1.0, v)).collect();
        m.add_constraint(Constraint::new(sum, Rel::Ge, 3.0));
        let out = m.solve(&SolveOptions::feasibility()).unwrap();
        assert_eq!(out.status, Status::Feasible);
        let sol = out.solution.unwrap();
        let total: f64 = sol.values.iter().sum();
        assert!(total >= 3.0 - 1e-6);
        assert!(out.stats.nodes <= 5, "nodes {}", out.stats.nodes);
    }

    #[test]
    fn equality_sum_partition() {
        // x1 + x2 + x3 = 2 with pairwise exclusion x1 + x2 <= 1 -> x3 = 1 and
        // exactly one of x1, x2.
        let mut m = Model::new();
        let x1 = m.add_var(Variable::binary());
        let x2 = m.add_var(Variable::binary());
        let x3 = m.add_var(Variable::binary());
        m.add_constraint(Constraint::new(
            LinExpr::new() + (1.0, x1) + (1.0, x2) + (1.0, x3),
            Rel::Eq,
            2.0,
        ));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x1) + (1.0, x2), Rel::Le, 1.0));
        let out = m.solve(&SolveOptions::feasibility()).unwrap();
        assert_eq!(out.status, Status::Feasible);
        let sol = out.solution.unwrap();
        assert_eq!(sol.int_value(x3), 1);
        assert_eq!(sol.int_value(x1) + sol.int_value(x2), 1);
    }

    #[test]
    fn unbounded_integer_model() {
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(0.0, f64::INFINITY));
        let y = m.add_var(Variable::binary());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, y), Rel::Le, 1.0));
        m.maximize(LinExpr::new() + (1.0, x));
        let out = m.solve(&SolveOptions::optimal()).unwrap();
        assert_eq!(out.status, Status::Unbounded);
    }

    #[test]
    fn node_limit_reported() {
        // A tight feasibility problem needing branching, with node_limit 1 and
        // heuristics off: stops with LimitReached.
        let mut m = Model::new();
        let vars: Vec<_> = (0..10).map(|_| m.add_var(Variable::binary())).collect();
        let sum: LinExpr = vars.iter().map(|&v| (3.0, v)).collect();
        m.add_constraint(Constraint::new(sum.clone(), Rel::Ge, 7.0));
        m.add_constraint(Constraint::new(sum, Rel::Le, 8.0));
        let mut opts = SolveOptions::feasibility().with_node_limit(1);
        opts.rounding_heuristic = false;
        let out = m.solve(&opts).unwrap();
        // One node explored, branching needed, then the limit fires.
        assert!(matches!(out.status, Status::LimitReached | Status::Feasible));
        if out.status == Status::LimitReached {
            assert!(out.solution.is_none());
        }
    }

    #[test]
    fn pivot_limit_stops_the_solve_deterministically() {
        // 16-item knapsack with a fractional LP optimum: a 3-pivot budget
        // cannot finish even the root LP, so the solve must stop with a
        // limit status — and two runs must report bit-identical stats.
        let mut m = Model::new();
        let vars: Vec<_> = (0..16).map(|_| m.add_var(Variable::binary())).collect();
        m.add_constraint(Constraint::new(
            vars.iter().enumerate().map(|(i, &v)| ((i % 7 + 2) as f64, v)).collect(),
            Rel::Le,
            19.0,
        ));
        m.maximize(vars.iter().enumerate().map(|(i, &v)| ((i % 5 + 1) as f64, v)).collect());
        let opts = SolveOptions::optimal().with_pivot_limit(3);
        let a = m.solve(&opts).unwrap();
        let b = m.solve(&opts).unwrap();
        assert_eq!(a.status, Status::LimitReached);
        assert!(a.solution.is_none());
        assert_eq!(a.stats.gap_ppm, 1_000_000);
        assert_eq!(a.stats.simplex_iterations, 3, "the drained budget is charged in full");
        let (mut sa, mut sb) = (a.stats, b.stats);
        sa.lp_time = Duration::ZERO;
        sb.lp_time = Duration::ZERO;
        assert_eq!(sa, sb);

        // A generous budget must not change the answer.
        let full = m.solve(&SolveOptions::optimal()).unwrap();
        let budgeted = m.solve(&SolveOptions::optimal().with_pivot_limit(1_000_000)).unwrap();
        assert_eq!(full.status, Status::Optimal);
        assert_eq!(budgeted.status, Status::Optimal);
        assert_eq!(full.solution.unwrap().objective, budgeted.solution.unwrap().objective);
    }

    #[test]
    fn time_limit_zero_fires_immediately() {
        let mut m = Model::new();
        let x = m.add_var(Variable::binary());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Ge, 1.0));
        let opts = SolveOptions::feasibility().with_time_limit(Duration::ZERO);
        let out = m.solve(&opts).unwrap();
        assert_eq!(out.status, Status::LimitReached);
    }

    #[test]
    fn optimal_matches_brute_force_on_small_knapsacks() {
        // Deterministic pseudo-random 8-item knapsacks cross-checked against
        // exhaustive enumeration.
        let mut seed = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for case in 0..25 {
            let items = 8;
            let weights: Vec<f64> = (0..items).map(|_| (next() % 20 + 1) as f64).collect();
            let values: Vec<f64> = (0..items).map(|_| (next() % 30 + 1) as f64).collect();
            let cap = (weights.iter().sum::<f64>() / 2.0).floor();

            let mut m = Model::new();
            let vars: Vec<_> = (0..items).map(|_| m.add_var(Variable::binary())).collect();
            m.add_constraint(Constraint::new(
                vars.iter().zip(&weights).map(|(&v, &w)| (w, v)).collect(),
                Rel::Le,
                cap,
            ));
            m.maximize(vars.iter().zip(&values).map(|(&v, &val)| (val, v)).collect());
            let out = m.solve(&SolveOptions::optimal()).unwrap();
            assert_eq!(out.status, Status::Optimal, "case {case}");
            let got = out.solution.unwrap().objective;

            let mut best = 0.0f64;
            for mask in 0u32..(1 << items) {
                let w: f64 = (0..items).filter(|&i| mask & (1 << i) != 0).map(|i| weights[i]).sum();
                if w <= cap {
                    let v: f64 =
                        (0..items).filter(|&i| mask & (1 << i) != 0).map(|i| values[i]).sum();
                    best = best.max(v);
                }
            }
            assert!((got - best).abs() < 1e-6, "case {case}: milp {got} vs brute {best}");
        }
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 3x + 2y, x integer in [0,4], y continuous in [0, 2.5],
        // x + y <= 5 -> x = 4, y = 1 -> 14.
        let mut m = Model::new();
        let x = m.add_var(Variable::integer(0.0, 4.0));
        let y = m.add_var(Variable::continuous(0.0, 2.5));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 5.0));
        m.maximize(LinExpr::new() + (3.0, x) + (2.0, y));
        let out = m.solve(&SolveOptions::optimal()).unwrap();
        assert_eq!(out.status, Status::Optimal);
        let sol = out.solution.unwrap();
        assert_eq!(sol.int_value(x), 4);
        assert!((sol.value(y) - 1.0).abs() < 1e-6);
        assert!((sol.objective - 14.0).abs() < 1e-6);
    }

    #[test]
    fn fractional_bounds_are_tightened_for_integers() {
        // x integer in [0.3, 2.7] -> effectively [1, 2].
        let mut m = Model::new();
        let x = m.add_var(Variable::integer(0.3, 2.7));
        m.maximize(LinExpr::new() + (1.0, x));
        let out = m.solve(&SolveOptions::optimal()).unwrap();
        assert_eq!(out.solution.unwrap().objective, 2.0);
        let mut m2 = Model::new();
        let y = m2.add_var(Variable::integer(0.3, 2.7));
        m2.minimize(LinExpr::new() + (1.0, y));
        let out2 = m2.solve(&SolveOptions::optimal()).unwrap();
        assert_eq!(out2.solution.unwrap().objective, 1.0);
    }
}
