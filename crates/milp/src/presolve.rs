//! Presolve: bound propagation and redundant-row elimination.
//!
//! The reductions keep the variable set (and indexing) intact, so a
//! solution of the reduced model is a solution of the original:
//!
//! * **activity-based bound tightening** — for every row, the minimum and
//!   maximum activity of all-but-one variable imply bounds on the
//!   remaining one; integer bounds are then rounded inward;
//! * **redundant-row removal** — a row whose worst-case activity already
//!   satisfies it is dropped;
//! * **infeasibility detection** — a row whose best-case activity violates
//!   it proves the model infeasible;
//! * **coefficient tightening** — on rows where a binary variable's
//!   coefficient exceeds what the row can actually absorb, the coefficient
//!   and right-hand side shrink in lockstep (Savelsbergh's rule): the
//!   integer solution set is unchanged but the LP relaxation is strictly
//!   tighter;
//! * **probing** — each binary (up to a deterministic cap, ascending
//!   index) is tentatively fixed to 0 and to 1 with a short propagation
//!   after each; an infeasible side fixes the variable to the other value,
//!   two infeasible sides prove the model infeasible, and two feasible
//!   sides still contribute the union of their implied bounds.
//!
//! Rounds repeat until a fixpoint (or a small cap).

use crate::model::{effective_bounds, Constraint, LinExpr, Model, Rel, VarId, VarKind};

/// Binaries probed per presolve, ascending variable index. Bounds the cost
/// of probing on the large linearized `Y·w` product-variable blocks.
const MAX_PROBES: usize = 64;
/// Propagation rounds inside each tentative probe fix.
const PROBE_ROUNDS: usize = 2;

/// Statistics of a presolve run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Number of variable bounds strengthened.
    pub tightened_bounds: usize,
    /// Number of constraints removed as redundant.
    pub removed_rows: usize,
    /// Propagation rounds performed.
    pub rounds: usize,
    /// Binaries fixed by probing (one tentative value proved infeasible).
    pub probed_fixings: usize,
    /// Row coefficients shrunk by coefficient tightening.
    pub coef_tightened: usize,
}

/// Result of presolving a model.
#[derive(Debug, Clone)]
pub enum PresolveOutcome {
    /// The reduced model (same variables, tightened bounds, fewer rows).
    Reduced(Model, PresolveStats),
    /// The constraints are provably inconsistent.
    Infeasible,
}

/// Presolves `model`. See the module docs for the reductions applied.
pub fn presolve(model: &Model) -> PresolveOutcome {
    let mut m = model.clone();
    let mut stats = PresolveStats::default();
    const MAX_ROUNDS: usize = 8;
    const TOL: f64 = 1e-9;

    // Effective (integrality-rounded) bounds, maintained locally.
    let mut lb: Vec<f64> = Vec::with_capacity(m.vars.len());
    let mut ub: Vec<f64> = Vec::with_capacity(m.vars.len());
    for v in &m.vars {
        let (lo, hi) = effective_bounds(v);
        if matches!(v.kind, VarKind::Integer | VarKind::Binary) {
            lb.push(lo.ceil());
            ub.push(hi.floor());
        } else {
            lb.push(lo);
            ub.push(hi);
        }
    }

    let mut normalized: Vec<Vec<(usize, f64)>> = m
        .constraints
        .iter()
        .map(|c| c.expr.normalized().into_iter().map(|(v, coef)| (v.index(), coef)).collect())
        .collect();
    let mut alive: Vec<bool> = vec![true; m.constraints.len()];

    for round in 0..MAX_ROUNDS {
        let mut changed = false;
        for (ci, c) in m.constraints.iter().enumerate() {
            if !alive[ci] {
                continue;
            }
            let terms = &normalized[ci];
            // Row activity bounds.
            let mut act_min = 0.0f64;
            let mut act_max = 0.0f64;
            for &(j, coef) in terms {
                if coef > 0.0 {
                    act_min += coef * lb[j];
                    act_max += coef * ub[j];
                } else {
                    act_min += coef * ub[j];
                    act_max += coef * lb[j];
                }
            }

            // Infeasibility / redundancy.
            match c.rel {
                Rel::Le => {
                    if act_min > c.rhs + TOL.max(1e-7 * c.rhs.abs()) {
                        return PresolveOutcome::Infeasible;
                    }
                    if act_max <= c.rhs + TOL {
                        alive[ci] = false;
                        stats.removed_rows += 1;
                        changed = true;
                        continue;
                    }
                }
                Rel::Ge => {
                    if act_max < c.rhs - TOL.max(1e-7 * c.rhs.abs()) {
                        return PresolveOutcome::Infeasible;
                    }
                    if act_min >= c.rhs - TOL {
                        alive[ci] = false;
                        stats.removed_rows += 1;
                        changed = true;
                        continue;
                    }
                }
                Rel::Eq => {
                    if act_min > c.rhs + TOL || act_max < c.rhs - TOL {
                        return PresolveOutcome::Infeasible;
                    }
                }
            }

            // Bound tightening: treat Le/Eq as `expr <= rhs` and Ge/Eq as
            // `expr >= rhs`, propagating onto each variable.
            if act_min.is_finite() && matches!(c.rel, Rel::Le | Rel::Eq) {
                for &(j, coef) in terms {
                    // Residual minimum activity excluding j.
                    let own_min = if coef > 0.0 { coef * lb[j] } else { coef * ub[j] };
                    let residual = act_min - own_min;
                    if coef > 0.0 {
                        let implied = (c.rhs - residual) / coef;
                        let implied = round_for(&m, j, implied, true);
                        if implied < ub[j] - TOL {
                            ub[j] = implied;
                            stats.tightened_bounds += 1;
                            changed = true;
                        }
                    } else {
                        let implied = (c.rhs - residual) / coef;
                        let implied = round_for(&m, j, implied, false);
                        if implied > lb[j] + TOL {
                            lb[j] = implied;
                            stats.tightened_bounds += 1;
                            changed = true;
                        }
                    }
                    if lb[j] > ub[j] + TOL {
                        return PresolveOutcome::Infeasible;
                    }
                }
            }
            if act_max.is_finite() && matches!(c.rel, Rel::Ge | Rel::Eq) {
                for &(j, coef) in terms {
                    let own_max = if coef > 0.0 { coef * ub[j] } else { coef * lb[j] };
                    let residual = act_max - own_max;
                    if coef > 0.0 {
                        let implied = (c.rhs - residual) / coef;
                        let implied = round_for(&m, j, implied, false);
                        if implied > lb[j] + TOL {
                            lb[j] = implied;
                            stats.tightened_bounds += 1;
                            changed = true;
                        }
                    } else {
                        let implied = (c.rhs - residual) / coef;
                        let implied = round_for(&m, j, implied, true);
                        if implied < ub[j] - TOL {
                            ub[j] = implied;
                            stats.tightened_bounds += 1;
                            changed = true;
                        }
                    }
                    if lb[j] > ub[j] + TOL {
                        return PresolveOutcome::Infeasible;
                    }
                }
            }
        }

        // Coefficient tightening (Savelsbergh): when a binary's coefficient
        // overshoots what the row can absorb, shrink coefficient and
        // right-hand side together. The integer solution set is unchanged
        // (the row was redundant on the slack side and binds identically on
        // the tight side) but the LP relaxation is strictly tighter. One
        // term per row per round, ascending term order, keeps the fixpoint
        // iteration deterministic.
        for ci in 0..m.constraints.len() {
            if !alive[ci] {
                continue;
            }
            let rel = m.constraints[ci].rel;
            if matches!(rel, Rel::Eq) {
                continue;
            }
            let b = m.constraints[ci].rhs;
            let mut act_min = 0.0f64;
            let mut act_max = 0.0f64;
            for &(j, coef) in &normalized[ci] {
                if coef > 0.0 {
                    act_min += coef * lb[j];
                    act_max += coef * ub[j];
                } else {
                    act_min += coef * ub[j];
                    act_max += coef * lb[j];
                }
            }
            // (term index, new coefficient, new right-hand side)
            let mut update: Option<(usize, f64, f64)> = None;
            for (idx, &(j, a)) in normalized[ci].iter().enumerate() {
                if !is_unfixed_binary(&m, j, &lb, &ub) {
                    continue;
                }
                match rel {
                    Rel::Le if a > 0.0 => {
                        let others = act_max - a;
                        if others.is_finite() && others < b - TOL && others + a > b + TOL {
                            update = Some((idx, a + others - b, others));
                        }
                    }
                    Rel::Le if a < 0.0 => {
                        let others = act_max;
                        if others.is_finite() && others > b + TOL && others + a < b - TOL {
                            update = Some((idx, b - others, b));
                        }
                    }
                    Rel::Ge if a < 0.0 => {
                        let others = act_min - a;
                        if others.is_finite() && others > b + TOL && others + a < b - TOL {
                            update = Some((idx, a + others - b, others));
                        }
                    }
                    Rel::Ge if a > 0.0 => {
                        let others = act_min;
                        if others.is_finite() && others < b - TOL && others + a > b + TOL {
                            update = Some((idx, b - others, b));
                        }
                    }
                    _ => {}
                }
                if update.is_some() {
                    break;
                }
            }
            if let Some((idx, coef, rhs)) = update {
                normalized[ci][idx].1 = coef;
                m.constraints[ci].rhs = rhs;
                m.constraints[ci].expr =
                    normalized[ci].iter().map(|&(j, c)| (c, VarId(j))).collect::<LinExpr>();
                stats.coef_tightened += 1;
                changed = true;
            }
        }

        stats.rounds = round + 1;
        if !changed {
            break;
        }
    }

    // Probing: tentatively fix each early binary to 0 and to 1 and run a
    // short propagation after each. An infeasible side forces the variable
    // to the other value (adopting that side's implied bounds); two
    // infeasible sides prove the model infeasible; two feasible sides still
    // bound every solution by the union of their implied boxes, because any
    // integer point has the binary at one of the two probed values.
    let mut probed = 0usize;
    let mut fixed_any = false;
    for j in 0..m.vars.len() {
        if probed >= MAX_PROBES {
            break;
        }
        if !is_unfixed_binary(&m, j, &lb, &ub) {
            continue;
        }
        probed += 1;
        let probe = |fix: f64, lb: &[f64], ub: &[f64]| -> Option<(Vec<f64>, Vec<f64>)> {
            let mut plo = lb.to_vec();
            let mut phi = ub.to_vec();
            plo[j] = fix;
            phi[j] = fix;
            propagate(&m, &normalized, &alive, &mut plo, &mut phi, PROBE_ROUNDS).map(|_| (plo, phi))
        };
        match (probe(0.0, &lb, &ub), probe(1.0, &lb, &ub)) {
            (None, None) => return PresolveOutcome::Infeasible,
            (None, Some((plo, phi))) | (Some((plo, phi)), None) => {
                lb.copy_from_slice(&plo);
                ub.copy_from_slice(&phi);
                stats.probed_fixings += 1;
                fixed_any = true;
            }
            (Some((lo0, hi0)), Some((lo1, hi1))) => {
                for k in 0..lb.len() {
                    let lo = lo0[k].min(lo1[k]);
                    let hi = hi0[k].max(hi1[k]);
                    if lo > lb[k] + TOL {
                        lb[k] = lo;
                        stats.tightened_bounds += 1;
                    }
                    if hi < ub[k] - TOL {
                        ub[k] = hi;
                        stats.tightened_bounds += 1;
                    }
                }
            }
        }
    }
    if fixed_any && propagate(&m, &normalized, &alive, &mut lb, &mut ub, MAX_ROUNDS).is_none() {
        return PresolveOutcome::Infeasible;
    }

    // Write back bounds and surviving rows.
    for (j, v) in m.vars.iter_mut().enumerate() {
        v.lower = lb[j];
        v.upper = ub[j];
    }
    let survivors: Vec<Constraint> =
        m.constraints.iter().zip(&alive).filter(|(_, &a)| a).map(|(c, _)| c.clone()).collect();
    let _ = std::mem::take(&mut normalized);
    m.constraints = survivors;
    PresolveOutcome::Reduced(m, stats)
}

/// Whether variable `j` is a still-free 0/1 variable under the working
/// bounds (declared binary, or integer with effective bounds exactly 0..1).
fn is_unfixed_binary(m: &Model, j: usize, lb: &[f64], ub: &[f64]) -> bool {
    matches!(m.vars[j].kind, VarKind::Binary | VarKind::Integer) && lb[j] == 0.0 && ub[j] == 1.0
}

/// Activity-based bound propagation on working bound vectors, up to
/// `rounds` sweeps. Returns `None` when a row proves infeasible under the
/// bounds, otherwise `Some(changed_anything)`. Mirrors the tightening in
/// [`presolve`] but mutates only `lb`/`ub`, which is what probing needs.
fn propagate(
    m: &Model,
    normalized: &[Vec<(usize, f64)>],
    alive: &[bool],
    lb: &mut [f64],
    ub: &mut [f64],
    rounds: usize,
) -> Option<bool> {
    const TOL: f64 = 1e-9;
    let mut any = false;
    for _ in 0..rounds {
        let mut changed = false;
        for (ci, c) in m.constraints.iter().enumerate() {
            if !alive[ci] {
                continue;
            }
            let terms = &normalized[ci];
            let mut act_min = 0.0f64;
            let mut act_max = 0.0f64;
            for &(j, coef) in terms {
                if coef > 0.0 {
                    act_min += coef * lb[j];
                    act_max += coef * ub[j];
                } else {
                    act_min += coef * ub[j];
                    act_max += coef * lb[j];
                }
            }
            let slack_tol = TOL.max(1e-7 * c.rhs.abs());
            match c.rel {
                Rel::Le => {
                    if act_min > c.rhs + slack_tol {
                        return None;
                    }
                }
                Rel::Ge => {
                    if act_max < c.rhs - slack_tol {
                        return None;
                    }
                }
                Rel::Eq => {
                    if act_min > c.rhs + TOL || act_max < c.rhs - TOL {
                        return None;
                    }
                }
            }
            if act_min.is_finite() && matches!(c.rel, Rel::Le | Rel::Eq) {
                for &(j, coef) in terms {
                    let own_min = if coef > 0.0 { coef * lb[j] } else { coef * ub[j] };
                    let residual = act_min - own_min;
                    let implied = (c.rhs - residual) / coef;
                    if coef > 0.0 {
                        let implied = round_for(m, j, implied, true);
                        if implied < ub[j] - TOL {
                            ub[j] = implied;
                            changed = true;
                        }
                    } else {
                        let implied = round_for(m, j, implied, false);
                        if implied > lb[j] + TOL {
                            lb[j] = implied;
                            changed = true;
                        }
                    }
                    if lb[j] > ub[j] + TOL {
                        return None;
                    }
                }
            }
            if act_max.is_finite() && matches!(c.rel, Rel::Ge | Rel::Eq) {
                for &(j, coef) in terms {
                    let own_max = if coef > 0.0 { coef * ub[j] } else { coef * lb[j] };
                    let residual = act_max - own_max;
                    let implied = (c.rhs - residual) / coef;
                    if coef > 0.0 {
                        let implied = round_for(m, j, implied, false);
                        if implied > lb[j] + TOL {
                            lb[j] = implied;
                            changed = true;
                        }
                    } else {
                        let implied = round_for(m, j, implied, true);
                        if implied < ub[j] - TOL {
                            ub[j] = implied;
                            changed = true;
                        }
                    }
                    if lb[j] > ub[j] + TOL {
                        return None;
                    }
                }
            }
        }
        any |= changed;
        if !changed {
            break;
        }
    }
    Some(any)
}

/// Rounds an implied bound inward for integer variables.
fn round_for(model: &Model, var: usize, value: f64, is_upper: bool) -> f64 {
    match model.vars[var].kind {
        VarKind::Integer | VarKind::Binary => {
            if is_upper {
                (value + 1e-9).floor()
            } else {
                (value - 1e-9).ceil()
            }
        }
        VarKind::Continuous => value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Variable};
    use crate::solution::SolveOptions;

    #[test]
    fn singleton_row_tightens_bound() {
        // 2x <= 5 with x integer in [0, 10] -> x <= 2, row becomes redundant.
        let mut m = Model::new();
        let x = m.add_var(Variable::integer(0.0, 10.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (2.0, x), Rel::Le, 5.0));
        match presolve(&m) {
            PresolveOutcome::Reduced(r, stats) => {
                assert_eq!(r.vars()[0].upper(), 2.0);
                assert!(stats.tightened_bounds >= 1);
                assert_eq!(r.constraint_count(), 0, "tightened row is redundant");
            }
            PresolveOutcome::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn detects_infeasible_row() {
        let mut m = Model::new();
        let x = m.add_var(Variable::binary());
        let y = m.add_var(Variable::binary());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Ge, 3.0));
        assert!(matches!(presolve(&m), PresolveOutcome::Infeasible));
    }

    #[test]
    fn removes_redundant_rows() {
        let mut m = Model::new();
        let x = m.add_var(Variable::binary());
        let y = m.add_var(Variable::binary());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 5.0));
        match presolve(&m) {
            PresolveOutcome::Reduced(r, stats) => {
                assert_eq!(r.constraint_count(), 0);
                assert_eq!(stats.removed_rows, 1);
            }
            PresolveOutcome::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn propagation_chains_across_rounds() {
        // x <= 3; y <= x - 1 (as y - x <= -1); z <= y (z - y <= 0):
        // bounds cascade to y <= 2, z <= 2.
        let mut m = Model::new();
        let x = m.add_var(Variable::integer(0.0, 100.0));
        let y = m.add_var(Variable::integer(0.0, 100.0));
        let z = m.add_var(Variable::integer(0.0, 100.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x), Rel::Le, 3.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, y) + (-1.0, x), Rel::Le, -1.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, z) + (-1.0, y), Rel::Le, 0.0));
        match presolve(&m) {
            PresolveOutcome::Reduced(r, stats) => {
                assert_eq!(r.vars()[0].upper(), 3.0);
                assert_eq!(r.vars()[1].upper(), 2.0);
                assert_eq!(r.vars()[2].upper(), 2.0);
                assert!(stats.rounds >= 2);
            }
            PresolveOutcome::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn preserves_solutions() {
        // Presolved and raw models give the same optimum on a knapsack.
        let mut m = Model::new();
        let vars: Vec<_> = (0..6).map(|_| m.add_var(Variable::binary())).collect();
        let weights = [3.0, 5.0, 7.0, 2.0, 4.0, 6.0];
        let values = [4.0, 6.0, 9.0, 2.0, 5.0, 7.0];
        m.add_constraint(Constraint::new(
            vars.iter().zip(weights).map(|(&v, w)| (w, v)).collect(),
            Rel::Le,
            12.0,
        ));
        m.maximize(vars.iter().zip(values).map(|(&v, c)| (c, v)).collect());
        let raw = m.solve(&SolveOptions::optimal()).unwrap();
        let reduced = match presolve(&m) {
            PresolveOutcome::Reduced(r, _) => r,
            PresolveOutcome::Infeasible => panic!("feasible model"),
        };
        let pre = reduced.solve(&SolveOptions::optimal()).unwrap();
        assert_eq!(raw.solution.unwrap().objective, pre.solution.unwrap().objective);
    }

    #[test]
    fn coefficient_tightening_shrinks_binary_coef() {
        // 3x + y <= 3.5, x binary, y in [0, 1]: others_max = 1, so the row
        // binds only through x and tightens to 0.5x + y <= 1 (same integer
        // set, strictly tighter LP relaxation).
        let mut m = Model::new();
        let x = m.add_var(Variable::binary());
        let y = m.add_var(Variable::continuous(0.0, 1.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (3.0, x) + (1.0, y), Rel::Le, 3.5));
        m.maximize(LinExpr::new() + (2.0, x) + (1.0, y));
        let raw = m.solve(&SolveOptions::optimal()).unwrap();
        match presolve(&m) {
            PresolveOutcome::Reduced(r, stats) => {
                assert!(stats.coef_tightened >= 1);
                assert_eq!(r.constraint_count(), 1);
                assert!((r.constraints[0].rhs - 1.0).abs() < 1e-9);
                let terms = r.constraints[0].expr.normalized();
                assert!((terms[0].1 - 0.5).abs() < 1e-9, "x coef tightened to 0.5");
                let pre = r.solve(&SolveOptions::optimal()).unwrap();
                assert_eq!(
                    raw.solution.unwrap().objective,
                    pre.solution.unwrap().objective,
                    "tightening must preserve the integer optimum"
                );
            }
            PresolveOutcome::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn probing_fixes_forced_binary() {
        // x + y <= 1 and x - y <= 0: fixing x = 1 forces y <= 0 and y >= 1,
        // so probing fixes x = 0. Single-row propagation cannot see this.
        let mut m = Model::new();
        let x = m.add_var(Variable::binary());
        let y = m.add_var(Variable::binary());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Le, 1.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (-1.0, y), Rel::Le, 0.0));
        match presolve(&m) {
            PresolveOutcome::Reduced(r, stats) => {
                assert!(stats.probed_fixings >= 1);
                assert_eq!(r.vars()[0].upper(), 0.0, "x fixed to 0 by probing");
            }
            PresolveOutcome::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn probing_detects_integer_infeasibility() {
        // x + y = 1 and x - y = 0 has only the fractional solution
        // x = y = 0.5; both probe values of x propagate to a contradiction.
        let mut m = Model::new();
        let x = m.add_var(Variable::binary());
        let y = m.add_var(Variable::binary());
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Eq, 1.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (-1.0, y), Rel::Eq, 0.0));
        assert!(matches!(presolve(&m), PresolveOutcome::Infeasible));
    }

    #[test]
    fn probing_union_bounds_tighten() {
        // y >= 4x and y >= 4 - 4x: each probe value of x implies y >= 4, so
        // the union of the probe boxes lifts y's lower bound to 4 even
        // though neither row alone implies it.
        let mut m = Model::new();
        let x = m.add_var(Variable::binary());
        let y = m.add_var(Variable::integer(0.0, 10.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, y) + (-4.0, x), Rel::Ge, 0.0));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, y) + (4.0, x), Rel::Ge, 4.0));
        match presolve(&m) {
            PresolveOutcome::Reduced(r, _) => {
                assert_eq!(r.vars()[1].lower(), 4.0, "probing lifts y's lower bound");
            }
            PresolveOutcome::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn ge_rows_raise_lower_bounds() {
        // x + y >= 1.5 with y <= 0.3 -> x >= 1.2.
        let mut m = Model::new();
        let x = m.add_var(Variable::continuous(0.0, 10.0));
        let y = m.add_var(Variable::continuous(0.0, 0.3));
        m.add_constraint(Constraint::new(LinExpr::new() + (1.0, x) + (1.0, y), Rel::Ge, 1.5));
        match presolve(&m) {
            PresolveOutcome::Reduced(r, _) => {
                assert!((r.vars()[0].lower() - 1.2).abs() < 1e-9);
            }
            PresolveOutcome::Infeasible => panic!("feasible model"),
        }
    }
}
