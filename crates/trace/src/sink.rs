//! Sinks and the global dispatch point.
//!
//! The global sink defaults to *none*: every emission site first checks one
//! relaxed atomic load, so an untraced run pays a single predictable branch
//! per potential event and allocates nothing.

use crate::event::{Event, EventKind, Value};
use std::cell::RefCell;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use std::time::Instant;

/// A destination for trace events.
///
/// Implementations must be thread-safe: the solver stack emits from
/// whatever thread is running a solve.
pub trait Sink: Send + Sync {
    /// Records one event.
    fn record(&self, event: Event);

    /// Flushes buffered output, if any.
    fn flush(&self) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static PANIC_FLUSH: OnceLock<()> = OnceLock::new();

/// Flushes the installed sink, if any. Uses `try_read` so it is safe from
/// a panic hook even if the panic fired while the sink slot was held.
fn flush_installed() {
    if let Ok(slot) = SINK.try_read() {
        if let Some(sink) = slot.as_ref() {
            sink.flush();
        }
    }
}

/// Registers (once per process) a panic hook that flushes the installed
/// sink before the previous hook runs, so a crashed or fault-injected run
/// still leaves a readable trace tail on disk. The hook chains: normal
/// panic reporting is unchanged.
fn install_panic_flush() {
    PANIC_FLUSH.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            flush_installed();
            previous(info);
        }));
    });
}

/// `true` when a sink is installed. The hot-path guard: a relaxed atomic
/// load and a branch, nothing else.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the process trace epoch (the first trace activity).
pub fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Installs `sink` as the global event destination, replacing and
/// returning any previous one.
pub fn install(sink: Arc<dyn Sink>) -> Option<Arc<dyn Sink>> {
    // Touch the epoch first so timestamps are relative to installation of
    // the first sink rather than the first event.
    let _ = EPOCH.get_or_init(Instant::now);
    install_panic_flush();
    let mut slot = SINK.write().unwrap_or_else(PoisonError::into_inner);
    let previous = slot.replace(sink);
    ENABLED.store(true, Ordering::Relaxed);
    previous
}

/// Removes the global sink (flushing it) and returns it, if any.
pub fn uninstall() -> Option<Arc<dyn Sink>> {
    let mut slot = SINK.write().unwrap_or_else(PoisonError::into_inner);
    ENABLED.store(false, Ordering::Relaxed);
    let sink = slot.take();
    if let Some(sink) = &sink {
        sink.flush();
    }
    sink
}

thread_local! {
    /// Per-thread capture buffer (see [`capture`]). When present, events
    /// emitted by this thread are diverted here instead of the global sink.
    static CAPTURE: RefCell<Option<Vec<Event>>> = const { RefCell::new(None) };
}

/// Runs `f` with this thread's trace events diverted into a buffer and
/// returns them alongside `f`'s result.
///
/// This is how parallel drivers keep a deterministic event stream: each
/// worker thread captures its own events, and the coordinator re-emits the
/// buffers in a deterministic order with [`dispatch_all`] after joining.
/// Timestamps are assigned at the original emission time, so captured
/// events record when work actually happened, not when they were merged.
///
/// When no sink is installed ([`enabled`] is `false`) the emission helpers
/// produce nothing, so `f` runs at full speed and the returned buffer is
/// empty. Calls may nest; each `capture` sees only the events of its own
/// scope.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Event>) {
    let previous = CAPTURE.with(|c| c.borrow_mut().replace(Vec::new()));
    let result = f();
    let events = CAPTURE.with(|c| {
        let mut slot = c.borrow_mut();
        let events = slot.take().unwrap_or_default();
        *slot = previous;
        events
    });
    (result, events)
}

/// Re-emits already-captured events (from [`capture`]) through the normal
/// dispatch path, preserving their original timestamps and order.
pub fn dispatch_all(events: Vec<Event>) {
    for event in events {
        dispatch(event);
    }
}

/// Sends `event` to this thread's capture buffer if one is active (see
/// [`capture`]), otherwise to the installed sink, if any.
pub fn dispatch(event: Event) {
    if !enabled() {
        return;
    }
    let event = match CAPTURE.with(|c| {
        let mut slot = c.borrow_mut();
        match slot.as_mut() {
            Some(buffer) => {
                buffer.push(event);
                None
            }
            None => Some(event),
        }
    }) {
        Some(event) => event,
        None => return,
    };
    let slot = SINK.read().unwrap_or_else(PoisonError::into_inner);
    if let Some(sink) = slot.as_ref() {
        sink.record(event);
    }
}

/// Emits a counter increment `name += value`.
#[inline]
pub fn counter(name: &str, value: u64) {
    if !enabled() {
        return;
    }
    dispatch(Event::new(EventKind::Counter, name).with("value", value));
}

/// Emits a gauge sample `name = value`.
#[inline]
pub fn gauge(name: &str, value: f64) {
    if !enabled() {
        return;
    }
    dispatch(Event::new(EventKind::Gauge, name).with("value", value));
}

/// Emits a structured point event with the fields produced by `fields`.
/// The closure only runs when tracing is enabled, so field construction
/// costs nothing on untraced runs.
#[inline]
pub fn event<F>(name: &str, fields: F)
where
    F: FnOnce() -> Vec<(String, Value)>,
{
    if !enabled() {
        return;
    }
    let mut e = Event::new(EventKind::Event, name);
    e.fields = fields();
    dispatch(e);
}

/// An in-flight span. Created by [`span`]; emits one
/// [`EventKind::Span`] event with a `dur_us` field when dropped (or
/// [`finish`](Span::finish)ed). Disarmed spans (tracing disabled at
/// creation) never touch the clock or allocate.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    fields: Vec<(String, Value)>,
}

impl Span {
    /// Attaches a field to the eventual span event.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        if self.start.is_some() {
            self.fields.push((key.into(), value.into()));
        }
        self
    }

    /// Attaches a field in place (for fields known only mid-span).
    pub fn add(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        if self.start.is_some() {
            self.fields.push((key.into(), value.into()));
        }
    }

    /// `true` when this span will emit an event.
    pub fn armed(&self) -> bool {
        self.start.is_some()
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else { return };
        let mut e = Event::new(EventKind::Span, self.name);
        e.fields = std::mem::take(&mut self.fields);
        e.fields.push(("dur_us".to_owned(), Value::U64(start.elapsed().as_micros() as u64)));
        dispatch(e);
    }
}

/// Opens a span named `name`. Returns a disarmed no-op guard when tracing
/// is disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { name, start: None, fields: Vec::new() };
    }
    Span { name, start: Some(Instant::now()), fields: Vec::new() }
}

/// An in-memory sink: a mutex-guarded vector of events.
///
/// The critical section is one `Vec::push`, so contention stays negligible
/// even when many solver threads emit concurrently.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: Event) {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).push(event);
    }
}

/// A sink that appends one JSON object per event to a file (JSONL).
///
/// Lines are buffered; [`flush`](Sink::flush) (called by
/// [`uninstall`]) or dropping the sink writes them out.
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation failures.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink { out: Mutex::new(BufWriter::new(file)) })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: Event) {
        let mut line = String::with_capacity(128);
        crate::json::write_event(&mut line, &event);
        line.push('\n');
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        // A full disk is not worth panicking a solver over; drop the line.
        let _ = out.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(PoisonError::into_inner).flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        Sink::flush(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-state tests share one process; serialize them.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_and_emission_is_a_noop() {
        let _g = GUARD.lock().unwrap();
        uninstall();
        assert!(!enabled());
        counter("x", 1);
        gauge("y", 2.0);
        event("z", || vec![("a".into(), Value::U64(1))]);
        let s = span("untraced");
        assert!(!s.armed());
        drop(s);
        // Nothing to observe: the point is that none of the above panicked
        // or needed a sink.
    }

    #[test]
    fn install_uninstall_round_trip() {
        let _g = GUARD.lock().unwrap();
        let sink = Arc::new(MemorySink::new());
        assert!(install(sink.clone()).is_none());
        assert!(enabled());
        counter("nodes", 5);
        {
            let mut sp = span("phase").with("n", 3u32);
            sp.add("extra", true);
            assert!(sp.armed());
        }
        let removed = uninstall().expect("was installed");
        assert!(!enabled());
        drop(removed);
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, EventKind::Counter);
        assert_eq!(events[0].u64_field("value"), Some(5));
        assert_eq!(events[1].kind, EventKind::Span);
        assert_eq!(events[1].u64_field("n"), Some(3));
        assert!(events[1].duration().is_some());
        assert!(sink.is_empty());
    }

    #[test]
    fn capture_diverts_this_threads_events_and_forwards_on_dispatch_all() {
        let _g = GUARD.lock().unwrap();
        let sink = Arc::new(MemorySink::new());
        install(sink.clone());
        counter("before", 1);
        let ((), captured) = capture(|| {
            counter("inside", 2);
            let _sp = span("inner.phase").with("n", 7u32);
        });
        counter("after", 3);
        // Nothing from the capture scope reached the sink directly.
        let direct: Vec<String> = sink.snapshot().iter().map(|e| e.name.clone()).collect();
        assert_eq!(direct, vec!["before", "after"]);
        assert_eq!(captured.len(), 2);
        assert_eq!(captured[0].name, "inside");
        assert_eq!(captured[1].name, "inner.phase");
        // Forwarding preserves the events verbatim.
        dispatch_all(captured);
        uninstall();
        let names: Vec<String> = sink.take().iter().map(|e| e.name.clone()).collect();
        assert_eq!(names, vec!["before", "after", "inside", "inner.phase"]);
    }

    #[test]
    fn capture_nests_and_is_empty_when_disabled() {
        let _g = GUARD.lock().unwrap();
        uninstall();
        let ((), events) = capture(|| counter("ghost", 1));
        assert!(events.is_empty(), "disabled tracing captures nothing");

        let sink = Arc::new(MemorySink::new());
        install(sink.clone());
        let ((), outer) = capture(|| {
            counter("outer.a", 1);
            let ((), inner) = capture(|| counter("inner.only", 2));
            assert_eq!(inner.len(), 1);
            assert_eq!(inner[0].name, "inner.only");
            counter("outer.b", 3);
        });
        uninstall();
        let names: Vec<&str> = outer.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["outer.a", "outer.b"]);
        assert!(sink.take().is_empty());
    }

    #[test]
    fn spans_created_while_disabled_stay_silent_after_enable() {
        let _g = GUARD.lock().unwrap();
        uninstall();
        let quiet = span("pre");
        let sink = Arc::new(MemorySink::new());
        install(sink.clone());
        drop(quiet); // was disarmed at creation
        uninstall();
        assert!(sink.is_empty());
    }
}
