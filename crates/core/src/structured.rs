//! A structured branch-and-bound solver specialized to the temporal
//! partitioning constraints.
//!
//! The ILP backend ([`crate::model`]) is faithful to the paper but — with a
//! from-scratch simplex instead of CPLEX — does not scale to the 32-task DCT
//! case study. This solver performs implicit enumeration over the *same*
//! feasible set: tasks are assigned in level order to (partition, design
//! point) pairs with incremental checking of the resource, temporal-order,
//! memory, and latency-window constraints, plus admissible lower-bound
//! pruning and symmetry breaking over interchangeable tasks. Equivalence
//! with the ILP backend is asserted by cross-checking tests on small
//! instances (`tests/backend_equivalence.rs`).

use crate::arch::{Architecture, EnvMemoryPolicy};
use crate::solution::{Placement, Solution};
use rtr_graph::{TaskGraph, TaskId};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Default bound on the number of dominance-memo entries kept per search
/// (see [`StructuredSolver::with_memo_limit`]). Each entry stores one
/// discrete key and one float vector, so the table caps out at a few
/// hundred MB on the largest paper-scale instances.
pub const DEFAULT_MEMO_LIMIT: usize = 1 << 20;

/// Entries kept per discrete memo key before new states stop being
/// recorded under that key (lookups always continue).
const MEMO_BUCKET_CAP: usize = 8;

/// Subtree jobs [`StructuredSolver::run_parallel`] aims to generate per
/// worker thread: enough slack that an unlucky giant subtree does not
/// serialize the whole search.
const JOBS_PER_THREAD: usize = 8;

/// Hard cap on generated subtree jobs (prefix expansion stops growing the
/// frontier once it is exceeded).
const MAX_JOBS: usize = 4096;

/// Granularity with which parallel workers claim node allowance from the
/// shared [`SearchLimits::node_limit`] budget.
const BUDGET_CHUNK: u64 = 4096;

/// Times a panicked subtree job is retried from a fresh state before the
/// subtree is abandoned and recorded in [`SearchStats::subtrees_lost`].
const JOB_RETRY_LIMIT: u32 = 2;

/// Failpoint namespace for the scheduler-level `sched.job` site under
/// subtree batches. Disjoint from the search layer's
/// `CANDIDATE_FAIL_KEY` (`1 << 62`) so a fault schedule hits the same
/// (job, attempt) pairs in both layers without aliasing.
const SUBTREE_FAIL_KEY: u64 = 0;

/// Limits for one structured search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchLimits {
    /// Maximum number of (partition, design point) assignments tried.
    pub node_limit: u64,
    /// Wall-clock deadline.
    pub time_limit: Option<Duration>,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits { node_limit: 50_000_000, time_limit: Some(Duration::from_secs(60)) }
    }
}

/// Result of one structured search.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchOutcome {
    /// A constraint-satisfying solution (already compacted).
    Feasible(Solution),
    /// The whole space was exhausted without a solution.
    Infeasible,
    /// A limit fired before the space was exhausted.
    LimitReached,
}

impl SearchOutcome {
    /// The solution, if feasible.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            SearchOutcome::Feasible(s) => Some(s),
            _ => None,
        }
    }
}

/// Search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Assignments tried.
    pub nodes: u64,
    /// Subtrees cut by the latency lower bound.
    pub latency_prunes: u64,
    /// Subtrees cut by area look-ahead.
    pub area_prunes: u64,
    /// Assignments rejected by the memory constraint.
    pub memory_rejects: u64,
    /// Subtrees cut because an already fully explored state at the same
    /// level dominated them (see the dominance memoization in
    /// [`StructuredSolver`]).
    pub dominance_prunes: u64,
    /// Worker panics caught and contained by
    /// [`StructuredSolver::run_parallel`]'s job isolation (always `0`
    /// without fault injection or a genuine bug).
    pub panics_caught: u64,
    /// Panicked subtree jobs that were retried from a fresh state.
    pub jobs_retried: u64,
    /// Subtree jobs abandoned after exhausting their retries; each one
    /// forces `exhausted` to `false`.
    pub subtrees_lost: u64,
    /// Times the search replaced its incumbent with a strictly better
    /// leaf (node-count-stamped `structured.incumbent` trace events carry
    /// the matching timeline).
    pub incumbent_updates: u64,
    /// Nodes charged per relative-depth bucket: bucket `i` covers
    /// assignment levels `[i·L/8, (i+1)·L/8)` of an `L`-level order, so
    /// the histogram is comparable across instances of different size.
    pub nodes_by_depth: [u64; DEPTH_BUCKETS],
    /// Subtrees pruned (all causes: latency, area, memory, dominance) per
    /// relative-depth bucket — where the bounds actually bite.
    pub prunes_by_depth: [u64; DEPTH_BUCKETS],
    /// `true` if the search space was fully exhausted (a returned solution
    /// is proven optimal for the [`SearchGoal::Optimal`] goal).
    pub exhausted: bool,
}

/// Relative-depth attribution buckets in [`SearchStats`].
pub const DEPTH_BUCKETS: usize = 8;

impl SearchStats {
    /// Accumulates another run's counters into this one. `exhausted`
    /// becomes the logical AND of both sides: a merge of several runs (or
    /// of per-thread partial searches) is exhaustive only if every part
    /// was. Accumulators that start from a neutral element must therefore
    /// initialize `exhausted` to `true`, not rely on `default()`.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.nodes += other.nodes;
        self.latency_prunes += other.latency_prunes;
        self.area_prunes += other.area_prunes;
        self.memory_rejects += other.memory_rejects;
        self.dominance_prunes += other.dominance_prunes;
        self.panics_caught += other.panics_caught;
        self.jobs_retried += other.jobs_retried;
        self.subtrees_lost += other.subtrees_lost;
        self.incumbent_updates += other.incumbent_updates;
        for (a, b) in self.nodes_by_depth.iter_mut().zip(&other.nodes_by_depth) {
            *a += b;
        }
        for (a, b) in self.prunes_by_depth.iter_mut().zip(&other.prunes_by_depth) {
            *a += b;
        }
        self.exhausted &= other.exhausted;
    }
}

impl rtr_trace::Instrument for SearchStats {
    /// Emits the structured-search counters under `scope` (e.g. scope
    /// `structured` yields `structured.nodes`, `structured.area_prunes`, ...).
    fn emit_metrics(&self, scope: &str) {
        if !rtr_trace::enabled() {
            return;
        }
        rtr_trace::counter(&format!("{scope}.nodes"), self.nodes);
        rtr_trace::counter(&format!("{scope}.latency_prunes"), self.latency_prunes);
        rtr_trace::counter(&format!("{scope}.area_prunes"), self.area_prunes);
        rtr_trace::counter(&format!("{scope}.memory_rejects"), self.memory_rejects);
        rtr_trace::counter(&format!("{scope}.dominance_prunes"), self.dominance_prunes);
        rtr_trace::counter(&format!("{scope}.incumbent_updates"), self.incumbent_updates);
        for (i, &v) in self.nodes_by_depth.iter().enumerate() {
            if v > 0 {
                rtr_trace::counter(&format!("{scope}.depth{i}.nodes"), v);
            }
        }
        for (i, &v) in self.prunes_by_depth.iter().enumerate() {
            if v > 0 {
                rtr_trace::counter(&format!("{scope}.depth{i}.prunes"), v);
            }
        }
    }
}

/// Goal of the structured search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchGoal {
    /// Stop at the first solution with total latency `≤ d_max`.
    FirstFeasible,
    /// Exhaust the space and return the minimum-latency solution with total
    /// latency `≤ d_max`.
    Optimal,
}

/// Which topological order tasks are assigned in. Different orders explore
/// different solution basins first; callers that hit a limit with one order
/// can retry with the other.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderHeuristic {
    /// Follow the data: consumers are assigned soon after their producers
    /// (default; best when intra-partition chains dominate).
    #[default]
    DataFlow,
    /// Strict level order: a whole graph level is assigned before the next.
    Level,
}

/// The solver. See the module docs for the algorithm outline.
#[derive(Debug)]
pub struct StructuredSolver<'g> {
    graph: &'g TaskGraph,
    arch: &'g Architecture,
    n: u32,
    d_max_ns: f64,
    goal: SearchGoal,
    limits: SearchLimits,
    // Precomputed per task (by task index):
    order: Vec<TaskId>,
    /// Design-point trial order per task (latency ascending).
    dp_order: Vec<Vec<usize>>,
    /// Symmetry group of each task (same group ⇒ interchangeable); the
    /// predecessor of a task within its group in assignment order, if any.
    group_prev: Vec<Option<usize>>,
    /// Total minimum area of tasks from position `i` of `order` onwards.
    suffix_min_area: Vec<u64>,
    /// Incoming edges of each task as `(pred index, data units)`.
    pred_edges: Vec<Vec<(usize, u64)>>,
    /// Longest min-latency path strictly below each task (to any leaf).
    tail_after_ns: Vec<f64>,
    /// Static suffix latency bound: the longest min-latency whole-graph
    /// path through any task at position `≥ i` of `order`. Any completion's
    /// `Σ_p d_p` is at least the graph's critical path, so this is an
    /// admissible per-level floor that stays tight near the root where the
    /// dynamic chain bound knows nothing yet.
    suffix_path_ns: Vec<f64>,
    /// Tasks "open" at each level: assigned before position `i` but with a
    /// successor at position `≥ i`. Together with the symmetry anchor these
    /// are the only already-assigned tasks a subtree below `i` can observe,
    /// and therefore the only ones in the dominance-memo key.
    memo_scope: Vec<Vec<usize>>,
    /// Bound on dominance-memo entries (0 disables memoization).
    memo_limit: usize,
    /// Warm-start hint: a (typically incumbent) placement tried first at
    /// every node.
    hint: Option<Vec<Placement>>,
}

/// Compile-time proof that the solver is re-entrant across threads: all
/// mutable search state lives in a per-`run` `State`, so
/// `TemporalPartitioner::explore_parallel` workers may build and run solvers
/// over the same graph and architecture concurrently.
#[allow(dead_code)]
fn assert_thread_safe() {
    fn sync_and_send<T: Sync + Send>() {}
    sync_and_send::<StructuredSolver<'static>>();
    sync_and_send::<SearchLimits>();
    sync_and_send::<SearchOutcome>();
    sync_and_send::<SearchStats>();
}

/// One fully-explored state recorded in the dominance memo: a float vector
/// (componentwise `≤` means "at least as good") plus the value `proven`,
/// with the claim *"this state has no in-window completion with total
/// latency `< proven − 1e-9`"*.
struct MemoEntry {
    dom: Vec<f64>,
    proven: f64,
}

/// Per-search (per-worker under [`StructuredSolver::run_parallel`])
/// dominance-memoization table. Keyed on the discrete part of a search
/// state; each bucket holds float vectors of states already explored to
/// completion at that key.
struct MemoTable {
    map: HashMap<Vec<u32>, Vec<MemoEntry>>,
    entries: usize,
    limit: usize,
}

impl MemoTable {
    fn new(limit: usize) -> Self {
        MemoTable { map: HashMap::new(), entries: 0, limit }
    }

    /// `true` if some recorded state dominates `(key, dom)` closely enough
    /// that exploring the current state cannot improve on `best_now`: the
    /// entry's completions are a superset with no larger totals, and none
    /// of them beats `entry.proven`, which `best_now` already matches.
    fn dominated(&self, key: &[u32], dom: &[f64], best_now: f64) -> bool {
        let Some(bucket) = self.map.get(key) else { return false };
        bucket.iter().any(|e| best_now <= e.proven && e.dom.iter().zip(dom).all(|(a, b)| *a <= *b))
    }

    fn insert(&mut self, key: Vec<u32>, dom: Vec<f64>, proven: f64) {
        if self.limit == 0 || self.entries >= self.limit {
            return;
        }
        // Failpoint: dropping a memo insert loses a future prune but never
        // changes results, so this site is safe under global injection.
        if rtr_trace::failpoint::failpoint("structured.memo_insert", proven.to_bits()) {
            return;
        }
        let bucket = self.map.entry(key).or_default();
        // Skip states an existing entry already covers; drop entries the
        // new one covers (prunes at least as often).
        if bucket
            .iter()
            .any(|e| e.proven >= proven && e.dom.iter().zip(&dom).all(|(a, b)| *a <= *b))
        {
            return;
        }
        let before = bucket.len();
        bucket.retain(|e| !(proven >= e.proven && dom.iter().zip(&e.dom).all(|(a, b)| *a <= *b)));
        self.entries -= before - bucket.len();
        if bucket.len() >= MEMO_BUCKET_CAP {
            return;
        }
        bucket.push(MemoEntry { dom, proven });
        self.entries += 1;
    }
}

/// State shared by the workers of [`StructuredSolver::run_parallel`].
/// Latencies travel through `incumbent_bits` as IEEE-754 bits: for
/// non-negative floats the bit pattern orders like the number, so
/// `fetch_min` on bits is `fetch_min` on latencies (the PR-2 explorer's
/// encoding).
struct Shared {
    /// Best total latency accepted by any worker (or the greedy seed).
    incumbent_bits: AtomicU64,
    /// Node allowance claimed so far against the global `node_limit`.
    nodes_claimed: AtomicU64,
    node_limit: u64,
    /// Lowest job index that found a solution ([`SearchGoal::FirstFeasible`]
    /// only); higher-indexed jobs become irrelevant.
    first_found: AtomicUsize,
    /// A node or time limit fired somewhere; stop claiming jobs.
    limit_hit: AtomicBool,
}

/// Undo frame of one applied assignment.
struct Undo {
    ti: usize,
    pi: usize,
    m: usize,
    delta_d: f64,
    old_d: f64,
    old_max: u32,
    old_chain_lb: f64,
    touched_from: usize,
}

/// Result of [`StructuredSolver::check_and_apply`].
enum Step {
    /// A constraint or prune rejected the candidate; state unchanged.
    Rejected,
    /// A limit fired (or the job became irrelevant); abort the search.
    Abort,
    /// The assignment was applied; undo with [`StructuredSolver::undo_step`].
    Applied(Undo),
}

/// Per-job outcome a parallel worker hands to the deterministic merge.
struct JobResult {
    /// Improvement found while running this job, if any.
    found: Option<(f64, Vec<Placement>)>,
    /// This job's share of the search statistics.
    stats: SearchStats,
    /// Trace events captured while the job ran, replayed in job order.
    events: Vec<rtr_trace::Event>,
}

struct State<'s> {
    part: Vec<u32>,
    dpc: Vec<usize>,
    area_used: Vec<u64>,
    /// Secondary-resource usage, `[partition][class]` (empty when the
    /// architecture declares no secondary classes).
    sec_used: Vec<Vec<u64>>,
    chain_ns: Vec<f64>,
    /// Longest whole-graph path ending at each assigned task, with chosen
    /// design-point latencies (all predecessors are assigned first).
    gdepth_ns: Vec<f64>,
    d_part_ns: Vec<f64>,
    sum_d_ns: f64,
    mem: Vec<u64>,
    max_part: u32,
    /// Total area committed by the assignments on the current path.
    total_area: u64,
    /// Running max over assigned tasks of `gdepth + tail_after`: a
    /// monotone-per-path admissible bound on the final `Σ_p d_p`.
    chain_lb_max: f64,
    stats: SearchStats,
    best: Option<(f64, Vec<Placement>)>,
    nodes_exhausted: bool,
    start: Instant,
    /// Memory-delta undo stack (frames delimited by [`Undo::touched_from`]).
    touched: Vec<(usize, u64)>,
    /// Per-level candidate buffers: `(bound key, enumeration seq, p, m)`.
    cand: Vec<Vec<(f64, u32, u32, u32)>>,
    memo: MemoTable,
    key_buf: Vec<u32>,
    dom_buf: Vec<f64>,
    /// `Some(depth)`: collect surviving prefixes of `depth` assignments
    /// into `jobs` instead of descending past them (job generation).
    gen_depth: Option<usize>,
    jobs: Vec<Vec<(u32, u32)>>,
    /// Set on parallel workers; `None` on the sequential path.
    shared: Option<&'s Shared>,
    /// Node allowance left from the last claimed budget chunk.
    budget_left: u64,
    job_index: usize,
    /// Counter values already pushed to the live status board; the next
    /// publication sends only the delta (see [`publish_status`]).
    published: StatusPublished,
}

/// Status-board counter values already published for one [`State`].
#[derive(Debug, Clone, Copy, Default)]
struct StatusPublished {
    nodes: u64,
    latency_prunes: u64,
    area_prunes: u64,
    memory_rejects: u64,
    dominance_prunes: u64,
}

/// How often (in charged nodes) a search pushes its deltas to the live
/// status board. Coarse enough to stay invisible next to the per-node
/// bound arithmetic, fine enough for sub-millisecond heartbeat freshness
/// at the solver's node rates.
const STATUS_CADENCE: u64 = 4096;

/// Pushes this state's counter growth since the last publication to the
/// process-global [`rtr_trace::status::board`]. Saturating arithmetic:
/// per-job stat resets can only make a delta read as zero, never wrap.
fn publish_status(st: &mut State) {
    let board = rtr_trace::status::board();
    let s = st.stats;
    let p = st.published;
    board.add_nodes(s.nodes.saturating_sub(p.nodes));
    board.add_prunes(
        s.latency_prunes.saturating_sub(p.latency_prunes),
        s.area_prunes.saturating_sub(p.area_prunes),
        s.memory_rejects.saturating_sub(p.memory_rejects),
        s.dominance_prunes.saturating_sub(p.dominance_prunes),
    );
    st.published = StatusPublished {
        nodes: s.nodes,
        latency_prunes: s.latency_prunes,
        area_prunes: s.area_prunes,
        memory_rejects: s.memory_rejects,
        dominance_prunes: s.dominance_prunes,
    };
}

impl<'g> StructuredSolver<'g> {
    /// Creates a solver for partition bound `n` and absolute latency budget
    /// `d_max_ns` (including reconfiguration overhead).
    pub fn new(
        graph: &'g TaskGraph,
        arch: &'g Architecture,
        n: u32,
        d_max_ns: f64,
        goal: SearchGoal,
        limits: SearchLimits,
    ) -> Self {
        Self::with_order(graph, arch, n, d_max_ns, goal, limits, OrderHeuristic::default())
    }

    /// [`new`](Self::new) with an explicit assignment-order heuristic.
    #[allow(clippy::too_many_arguments)]
    pub fn with_order(
        graph: &'g TaskGraph,
        arch: &'g Architecture,
        n: u32,
        d_max_ns: f64,
        goal: SearchGoal,
        limits: SearchLimits,
        order_heuristic: OrderHeuristic,
    ) -> Self {
        let count = graph.task_count();
        let min_latency_ns: Vec<f64> =
            graph.tasks().iter().map(|t| t.min_latency_point().latency().as_ns()).collect();
        let min_area: Vec<u64> =
            graph.tasks().iter().map(|t| t.min_area_point().area().units()).collect();

        // Level = longest-path depth; sorting by it is a topological order.
        let mut level = vec![0u32; count];
        for &t in graph.topological_order() {
            let l = graph.predecessors(t).iter().map(|p| level[p.index()] + 1).max().unwrap_or(0);
            level[t.index()] = l;
        }

        // Interchangeability groups: same preds, succs, env I/O, and design
        // point multiset.
        let group_key = |t: usize| -> String {
            let task = &graph.tasks()[t];
            let mut preds: Vec<usize> =
                graph.predecessors(TaskId::from_index(t)).iter().map(|p| p.index()).collect();
            preds.sort_unstable();
            let mut succs: Vec<usize> =
                graph.successors(TaskId::from_index(t)).iter().map(|s| s.index()).collect();
            succs.sort_unstable();
            let dps: Vec<String> = task
                .design_points()
                .iter()
                .map(|d| format!("{}:{}", d.area().units(), d.latency().as_ns()))
                .collect();
            format!("{preds:?}|{succs:?}|{dps:?}|{}|{}", task.env_input(), task.env_output())
        };
        let keys: Vec<String> = (0..count).map(group_key).collect();

        // Assignment order: a topological order that "follows the data" —
        // among ready tasks, prefer (1) siblings of the task just assigned
        // (keeps interchangeable groups consecutive for symmetry breaking),
        // then (2) tasks whose predecessors were assigned most recently
        // (keeps producers and their consumers close, which lets pruning see
        // the consequences of a packing early), then id order.
        let order: Vec<TaskId> = match order_heuristic {
            OrderHeuristic::DataFlow => {
                let mut remaining_deps: Vec<usize> =
                    (0..count).map(|t| graph.predecessors(TaskId::from_index(t)).len()).collect();
                let mut ready: Vec<usize> =
                    (0..count).filter(|&t| remaining_deps[t] == 0).collect();
                let mut last_pred_pos = vec![-1i64; count];
                let mut order: Vec<TaskId> = Vec::with_capacity(count);
                let mut last_key: Option<&str> = None;
                // `max_by` is `Some` exactly while `ready` is non-empty.
                while let Some(pos) = ready
                    .iter()
                    .enumerate()
                    .max_by(|(_, &a), (_, &b)| {
                        let sib_a = last_key == Some(keys[a].as_str());
                        let sib_b = last_key == Some(keys[b].as_str());
                        sib_a
                            .cmp(&sib_b)
                            .then(last_pred_pos[a].cmp(&last_pred_pos[b]))
                            .then(b.cmp(&a))
                    })
                    .map(|(i, _)| i)
                {
                    let t = ready.swap_remove(pos);
                    last_key = Some(keys[t].as_str());
                    let assigned_pos = order.len() as i64;
                    order.push(TaskId::from_index(t));
                    for s in graph.successors(TaskId::from_index(t)) {
                        let si = s.index();
                        last_pred_pos[si] = last_pred_pos[si].max(assigned_pos);
                        remaining_deps[si] -= 1;
                        if remaining_deps[si] == 0 {
                            ready.push(si);
                        }
                    }
                }
                order
            }
            OrderHeuristic::Level => {
                let mut order: Vec<TaskId> = (0..count).map(TaskId::from_index).collect();
                order.sort_by(|a, b| {
                    level[a.index()]
                        .cmp(&level[b.index()])
                        .then_with(|| keys[a.index()].cmp(&keys[b.index()]))
                        .then_with(|| a.index().cmp(&b.index()))
                });
                order
            }
        };
        debug_assert_eq!(order.len(), count);

        // group_prev: the previous same-group task in assignment order.
        let mut group_prev = vec![None; count];
        for w in order.windows(2) {
            let (a, b) = (w[0].index(), w[1].index());
            if keys[a] == keys[b] && level[a] == level[b] {
                group_prev[b] = Some(a);
            }
        }

        // Smallest-area first: packing feasibility dominates the search; the
        // chain lower bound rejects too-slow points cheaply when the window
        // is tight.
        let dp_order: Vec<Vec<usize>> = graph
            .tasks()
            .iter()
            .map(|task| {
                let mut idx: Vec<usize> = (0..task.design_points().len()).collect();
                idx.sort_by(|&a, &b| {
                    let da = &task.design_points()[a];
                    let db = &task.design_points()[b];
                    da.area().cmp(&db.area()).then(da.latency().total_cmp(&db.latency()))
                });
                idx
            })
            .collect();

        let mut suffix_min_area = vec![0u64; count + 1];
        for i in (0..count).rev() {
            suffix_min_area[i] = suffix_min_area[i + 1] + min_area[order[i].index()];
        }

        let mut pred_edges = vec![Vec::new(); count];
        for e in graph.edges() {
            pred_edges[e.dst().index()].push((e.src().index(), e.data()));
        }
        let mut tail_after_ns = vec![0.0f64; count];
        for &t in graph.topological_order().iter().rev() {
            let ti = t.index();
            tail_after_ns[ti] = graph
                .successors(t)
                .iter()
                .map(|s| min_latency_ns[s.index()] + tail_after_ns[s.index()])
                .fold(0.0f64, f64::max);
        }

        // Longest min-latency path ending at each task (inclusive), then
        // the per-level suffix of the "longest path through" values.
        let mut head_min_ns = vec![0.0f64; count];
        for &t in graph.topological_order() {
            let ti = t.index();
            head_min_ns[ti] = min_latency_ns[ti]
                + graph
                    .predecessors(t)
                    .iter()
                    .map(|q| head_min_ns[q.index()])
                    .fold(0.0f64, f64::max);
        }
        let mut suffix_path_ns = vec![0.0f64; count + 1];
        for i in (0..count).rev() {
            let ti = order[i].index();
            suffix_path_ns[i] = suffix_path_ns[i + 1].max(head_min_ns[ti] + tail_after_ns[ti]);
        }

        // Open-task scope per level for the dominance memo key.
        let mut pos_of = vec![0usize; count];
        for (i, t) in order.iter().enumerate() {
            pos_of[t.index()] = i;
        }
        let max_succ_pos: Vec<Option<usize>> = (0..count)
            .map(|t| {
                graph.successors(TaskId::from_index(t)).iter().map(|s| pos_of[s.index()]).max()
            })
            .collect();
        let memo_scope: Vec<Vec<usize>> = (0..count)
            .map(|i| {
                (0..count)
                    .filter(|&t| pos_of[t] < i && max_succ_pos[t].is_some_and(|s| s >= i))
                    .collect()
            })
            .collect();

        StructuredSolver {
            graph,
            arch,
            n,
            d_max_ns,
            goal,
            limits,
            order,
            dp_order,
            group_prev,
            suffix_min_area,
            pred_edges,
            tail_after_ns,
            suffix_path_ns,
            memo_scope,
            memo_limit: DEFAULT_MEMO_LIMIT,
            hint: None,
        }
    }

    /// Installs a warm-start hint: `placements[t]` is tried first when task
    /// `t` is assigned. Typically the incumbent of a previous, looser
    /// window; completeness is unaffected (the hint only reorders the
    /// search).
    pub fn with_hint(mut self, placements: Vec<Placement>) -> Self {
        self.hint = Some(placements);
        self
    }

    /// Caps the dominance-memoization table at `limit` entries
    /// ([`DEFAULT_MEMO_LIMIT`] unless overridden); `0` disables
    /// memoization entirely. Memoization only ever prunes states proven
    /// unable to improve the incumbent, so the returned solution and
    /// outcome are identical at any limit — only the node count changes.
    pub fn with_memo_limit(mut self, limit: usize) -> Self {
        self.memo_limit = limit;
        self
    }

    /// `false` if some task fits no design point on the device at all.
    fn admissible(&self) -> bool {
        self.graph
            .tasks()
            .iter()
            .all(|task| task.design_points().iter().any(|dp| self.arch.admits(dp)))
    }

    /// Greedy seeding: a constructive packing often satisfies loose
    /// windows outright, and otherwise provides an incumbent for the
    /// optimal goal. For [`SearchGoal::FirstFeasible`] the first in-window
    /// packing wins (matching the search's early return); for
    /// [`SearchGoal::Optimal`] the best of the three pickers.
    fn greedy_seed(&self) -> Option<(f64, Solution)> {
        let mut seed: Option<(f64, Solution)> = None;
        for picker in [
            crate::baseline::DesignPointPicker::MinArea,
            crate::baseline::DesignPointPicker::MinLatency,
            crate::baseline::DesignPointPicker::MaxArea,
        ] {
            if let Some(sol) =
                crate::baseline::greedy_partition(self.graph, self.arch, picker, self.n)
            {
                let total = sol.total_latency(self.graph, self.arch).as_ns();
                if total <= self.d_max_ns + 1e-9
                    && seed.as_ref().map(|(b, _)| total < *b).unwrap_or(true)
                {
                    seed = Some((total, sol));
                    if self.goal == SearchGoal::FirstFeasible {
                        return seed;
                    }
                }
            }
        }
        seed
    }

    fn fresh_state(&self, best: Option<(f64, Vec<Placement>)>, start: Instant) -> State<'_> {
        let count = self.graph.task_count();
        let np = self.n as usize;
        State {
            part: vec![0; count],
            dpc: vec![0; count],
            area_used: vec![0; np],
            sec_used: vec![vec![0; self.arch.secondary_capacities().len()]; np],
            chain_ns: vec![0.0; count],
            gdepth_ns: vec![0.0; count],
            d_part_ns: vec![0.0; np],
            sum_d_ns: 0.0,
            mem: vec![0; np.saturating_sub(1)],
            max_part: 0,
            total_area: 0,
            chain_lb_max: 0.0,
            stats: SearchStats::default(),
            best,
            nodes_exhausted: true,
            start,
            touched: Vec::new(),
            cand: vec![Vec::new(); count],
            memo: MemoTable::new(self.memo_limit),
            key_buf: Vec::new(),
            dom_buf: Vec::new(),
            gen_depth: None,
            jobs: Vec::new(),
            shared: None,
            budget_left: 0,
            job_index: 0,
            published: StatusPublished::default(),
        }
    }

    /// The relative-depth attribution bucket of assignment level `idx`
    /// (see [`SearchStats::nodes_by_depth`]).
    #[inline]
    fn depth_bucket(&self, idx: usize) -> usize {
        (idx * DEPTH_BUCKETS / self.order.len().max(1)).min(DEPTH_BUCKETS - 1)
    }

    /// Runs the search.
    pub fn run(&self) -> (SearchOutcome, SearchStats) {
        // A task none of whose design points fits the device can never be
        // placed.
        if !self.admissible() {
            return (SearchOutcome::Infeasible, SearchStats::default());
        }
        let seed = self.greedy_seed();
        if self.goal == SearchGoal::FirstFeasible {
            if let Some((_, sol)) = seed {
                return (SearchOutcome::Feasible(sol), SearchStats::default());
            }
        }
        let seed = seed.map(|(total, sol)| (total, sol.placements().to_vec()));
        let mut st = self.fresh_state(seed, Instant::now());
        self.dfs(0, &mut st);
        publish_status(&mut st);
        let mut stats = st.stats;
        stats.exhausted = st.nodes_exhausted;
        match st.best {
            Some((_, placements)) => {
                let sol = Solution::new(placements, self.n).compacted(self.n);
                (SearchOutcome::Feasible(sol), stats)
            }
            None if st.nodes_exhausted => (SearchOutcome::Infeasible, stats),
            None => (SearchOutcome::LimitReached, stats),
        }
    }

    /// `true` when the dominance memo applies at level `idx`: never during
    /// job generation (a truncated descent proves nothing), never when
    /// disabled, and only where a subtree is deep enough that a lookup can
    /// pay for itself.
    fn memo_active(&self, idx: usize, st: &State) -> bool {
        st.gen_depth.is_none() && self.memo_limit > 0 && idx >= 1 && self.order.len() - idx >= 4
    }

    /// Fills `st.key_buf` (discrete part) and `st.dom_buf` (float part,
    /// componentwise `≤` = at-least-as-good) with the dominance signature of
    /// the current state at level `idx`. Only quantities a subtree below
    /// `idx` can observe participate: the open-task scope's partitions and
    /// chains, the symmetry anchor, and the per-partition loads. The
    /// admissible-bound inputs (`gdepth`, `chain_lb_max`) are deliberately
    /// excluded — they only tighten pruning, never completion totals.
    fn build_memo_key(&self, idx: usize, st: &mut State) {
        let ti = self.order[idx].index();
        st.key_buf.clear();
        st.key_buf.push(idx as u32);
        st.key_buf.push(st.max_part);
        match self.group_prev[ti] {
            // `dpc + 1` so the anchor can never collide with "no anchor".
            Some(prev) => {
                st.key_buf.push(st.part[prev]);
                st.key_buf.push(st.dpc[prev] as u32 + 1);
            }
            None => {
                st.key_buf.push(0);
                st.key_buf.push(0);
            }
        }
        for &q in &self.memo_scope[idx] {
            st.key_buf.push(st.part[q]);
        }
        st.dom_buf.clear();
        st.dom_buf.extend_from_slice(&st.d_part_ns);
        st.dom_buf.extend(st.area_used.iter().map(|&a| a as f64));
        for per_partition in &st.sec_used {
            st.dom_buf.extend(per_partition.iter().map(|&u| u as f64));
        }
        st.dom_buf.extend(st.mem.iter().map(|&m| m as f64));
        for &q in &self.memo_scope[idx] {
            st.dom_buf.push(st.chain_ns[q]);
        }
    }

    /// Returns `true` to abort the whole search (first-feasible found, or a
    /// limit fired).
    fn dfs(&self, idx: usize, st: &mut State) -> bool {
        if idx == self.order.len() {
            let total = st.sum_d_ns + self.ct_ns() * f64::from(st.max_part);
            if total <= self.d_max_ns + 1e-9 {
                let better = match &st.best {
                    Some((b, _)) => total < b - 1e-9,
                    None => true,
                };
                if better {
                    let placements: Vec<Placement> = st
                        .part
                        .iter()
                        .zip(&st.dpc)
                        .map(|(&p, &m)| Placement { partition: p, design_point: m })
                        .collect();
                    st.best = Some((total, placements));
                    st.stats.incumbent_updates += 1;
                    rtr_trace::status::board().record_incumbent(total);
                    // Node-count-stamped (not wall-clock-stamped), so the
                    // improvement timeline is deterministic and replays
                    // identically through the capture/merge machinery.
                    let nodes = st.stats.nodes;
                    rtr_trace::event("structured.incumbent", || {
                        vec![
                            ("nodes".to_owned(), nodes.into()),
                            ("latency_ns".to_owned(), total.into()),
                        ]
                    });
                    if let Some(sh) = st.shared {
                        sh.incumbent_bits.fetch_min(total.to_bits(), Ordering::Relaxed);
                    }
                }
                if self.goal == SearchGoal::FirstFeasible {
                    return true;
                }
            }
            return false;
        }

        // Job generation: record the surviving prefix instead of descending.
        if st.gen_depth == Some(idx) {
            let prefix: Vec<(u32, u32)> = self.order[..idx]
                .iter()
                .map(|t| (st.part[t.index()], st.dpc[t.index()] as u32))
                .collect();
            st.jobs.push(prefix);
            return false;
        }

        let memo_here = self.memo_active(idx, st);
        if memo_here {
            self.build_memo_key(idx, st);
            let best_now = st.best.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY);
            if st.memo.dominated(&st.key_buf, &st.dom_buf, best_now) {
                st.stats.dominance_prunes += 1;
                st.stats.prunes_by_depth[self.depth_bucket(idx)] += 1;
                return false;
            }
        }

        let t = self.order[idx];
        let ti = t.index();
        let task = &self.graph.tasks()[ti];
        let p_min =
            self.graph.predecessors(t).iter().map(|q| st.part[q.index()]).max().unwrap_or(1).max(1);
        // Symmetry breaking: within an interchangeable group, (partition,
        // design point) must be lexicographically non-decreasing.
        let sym_floor = self.group_prev[ti].map(|prev| (st.part[prev], st.dpc[prev]));

        // Warm start: follow the hint solution first (local search around
        // an incumbent from a previous, looser window).
        let hint_pair = self
            .hint
            .as_ref()
            .and_then(|h| h.get(ti).copied())
            .map(|pl| (pl.partition, pl.design_point))
            .filter(|&(p, m)| {
                p >= p_min
                    && p <= self.n
                    && m < task.design_points().len()
                    && match sym_floor {
                        Some((sp, sm)) => p > sp || (p == sp && m >= sm),
                        None => true,
                    }
            });
        if let Some((p, m)) = hint_pair {
            if let Some(abort) = self.try_candidate(idx, t, p, m, st) {
                if abort {
                    return true;
                }
            }
        }

        // Candidate ordering: try cheap assignments first so the incumbent
        // closes early. The key is the exact objective increment — the
        // partition-latency growth plus `C_T` times the partition-count
        // growth; only the `p_min` partition can chain with predecessors
        // (every predecessor lives at a partition `≤ p_min`), so the chain
        // contribution is known without applying the assignment. Enumeration
        // order breaks ties, which keeps the order deterministic.
        let chain_pmin = self
            .graph
            .predecessors(t)
            .iter()
            .filter(|q| st.part[q.index()] == p_min)
            .map(|q| st.chain_ns[q.index()])
            .fold(0.0f64, f64::max);
        let mut cand = std::mem::take(&mut st.cand[idx]);
        cand.clear();
        let mut seq = 0u32;
        for p in p_min..=self.n {
            let pi = (p - 1) as usize;
            for &m in &self.dp_order[ti] {
                seq += 1;
                if Some((p, m)) == hint_pair {
                    continue;
                }
                if let Some((sp, sm)) = sym_floor {
                    if p < sp || (p == sp && m < sm) {
                        continue;
                    }
                }
                let dp = &task.design_points()[m];
                let base = if p == p_min { chain_pmin } else { 0.0 };
                let delta_d = st.d_part_ns[pi].max(base + dp.latency().as_ns()) - st.d_part_ns[pi];
                let eta_delta = f64::from(p.max(st.max_part) - st.max_part);
                cand.push((delta_d + self.ct_ns() * eta_delta, seq, p, m as u32));
            }
        }
        cand.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut aborted = false;
        for &(_, _, p, m) in &cand {
            if let Some(true) = self.try_candidate(idx, t, p, m as usize, st) {
                aborted = true;
                break;
            }
        }
        st.cand[idx] = cand;
        if aborted {
            return true;
        }

        // Fully explored without a limit firing: record the dominance entry.
        // `proven` is the tightest incumbent this exploration pruned against
        // — nothing below this state beats it by more than the tolerance.
        if memo_here {
            // The buffers were clobbered by deeper levels; rebuild them.
            self.build_memo_key(idx, st);
            let local = st.best.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY);
            let shared_best = st
                .shared
                .map(|sh| f64::from_bits(sh.incumbent_bits.load(Ordering::Relaxed)))
                .unwrap_or(f64::INFINITY);
            let key = st.key_buf.clone();
            let dom = st.dom_buf.clone();
            st.memo.insert(key, dom, local.min(shared_best));
        }
        false
    }

    /// Charges one node against the active limits. Returns `true` to abort.
    ///
    /// Sequential path: exact node/time limits, unchanged semantics. Shared
    /// path: workers claim allowances from the *global* node budget in
    /// [`BUDGET_CHUNK`]-sized chunks, so a `node_limit` of 50M means 50M
    /// nodes across all threads (allowances never exceed the remainder);
    /// wall-clock and first-found aborts piggyback on the every-1024 check.
    fn charge_node(&self, st: &mut State) -> bool {
        match st.shared {
            None => {
                if st.stats.nodes >= self.limits.node_limit {
                    st.nodes_exhausted = false;
                    return true;
                }
                if let Some(limit) = self.limits.time_limit {
                    if st.stats.nodes.is_multiple_of(1024) && st.start.elapsed() >= limit {
                        st.nodes_exhausted = false;
                        return true;
                    }
                }
            }
            Some(sh) => {
                if st.budget_left == 0 {
                    if sh.limit_hit.load(Ordering::Relaxed) {
                        st.nodes_exhausted = false;
                        return true;
                    }
                    let claimed = sh.nodes_claimed.fetch_add(BUDGET_CHUNK, Ordering::Relaxed);
                    if claimed >= sh.node_limit {
                        sh.limit_hit.store(true, Ordering::Relaxed);
                        st.nodes_exhausted = false;
                        return true;
                    }
                    st.budget_left = BUDGET_CHUNK.min(sh.node_limit - claimed);
                }
                if st.stats.nodes.is_multiple_of(1024) {
                    if let Some(limit) = self.limits.time_limit {
                        if st.start.elapsed() >= limit {
                            sh.limit_hit.store(true, Ordering::Relaxed);
                            st.nodes_exhausted = false;
                            return true;
                        }
                    }
                    // First-feasible found in an earlier subtree: this job
                    // can no longer win the merge, stop without marking the
                    // search non-exhaustive.
                    if self.goal == SearchGoal::FirstFeasible
                        && sh.first_found.load(Ordering::Relaxed) < st.job_index
                    {
                        return true;
                    }
                }
                st.budget_left -= 1;
            }
        }
        st.stats.nodes += 1;
        if st.stats.nodes.is_multiple_of(STATUS_CADENCE) {
            publish_status(st);
        }
        false
    }

    /// Checks task `t` on `(p, m)` against every constraint and bound and,
    /// if it survives, applies the assignment. `charge` is `false` only
    /// when a parallel worker replays an already-charged job prefix.
    fn check_and_apply(
        &self,
        idx: usize,
        t: TaskId,
        p: u32,
        m: usize,
        st: &mut State,
        charge: bool,
    ) -> Step {
        let ti = t.index();
        let task = &self.graph.tasks()[ti];
        let pi = (p - 1) as usize;
        if charge {
            if self.charge_node(st) {
                return Step::Abort;
            }
            st.stats.nodes_by_depth[self.depth_bucket(idx)] += 1;
        }

        let dp = &task.design_points()[m];
        // Resource.
        if st.area_used[pi] + dp.area().units() > self.arch.resource_capacity().units() {
            return Step::Rejected;
        }
        // Secondary resource classes (constraint (6) per class).
        if self
            .arch
            .secondary_capacities()
            .iter()
            .enumerate()
            .any(|(k, &cap)| st.sec_used[pi][k] + dp.secondary_usage(k) > cap)
        {
            return Step::Rejected;
        }
        // Area look-ahead: remaining minimum areas (excluding t) must
        // fit in the total free area.
        let free_total: u64 = (0..self.n as usize)
            .map(|q| self.arch.resource_capacity().units() - st.area_used[q])
            .sum::<u64>()
            - dp.area().units();
        if self.suffix_min_area[idx + 1] > free_total {
            st.stats.area_prunes += 1;
            st.stats.prunes_by_depth[self.depth_bucket(idx)] += 1;
            return Step::Rejected;
        }

        // Latency bookkeeping.
        let chain = dp.latency().as_ns()
            + self
                .graph
                .predecessors(t)
                .iter()
                .filter(|q| st.part[q.index()] == p)
                .map(|q| st.chain_ns[q.index()])
                .fold(0.0f64, f64::max);
        let new_d = st.d_part_ns[pi].max(chain);
        let delta_d = new_d - st.d_part_ns[pi];
        let new_sum = st.sum_d_ns + delta_d;
        let new_max_part = st.max_part.max(p);
        // Admissible chain bound: the longest assigned-latency path ending
        // at t plus the cheapest possible completion below it; tracked as a
        // running max because it is monotone along a path.
        let gdepth = dp.latency().as_ns()
            + self.pred_edges[ti].iter().map(|&(q, _)| st.gdepth_ns[q]).fold(0.0f64, f64::max);
        let chain_track = st.chain_lb_max.max(gdepth + self.tail_after_ns[ti]);
        // η lower bound: partitions already opened, or however many the
        // committed area plus the cheapest remaining areas must occupy.
        let eta_lb = new_max_part.max(crate::bounds::min_partitions_for_area(
            st.total_area + dp.area().units() + self.suffix_min_area[idx + 1],
            self.arch.resource_capacity().units(),
        ));
        let lb = new_sum.max(chain_track).max(self.suffix_path_ns[idx + 1])
            + self.ct_ns() * f64::from(eta_lb);
        if lb > self.d_max_ns + 1e-9 {
            st.stats.latency_prunes += 1;
            st.stats.prunes_by_depth[self.depth_bucket(idx)] += 1;
            return Step::Rejected;
        }
        if self.goal == SearchGoal::Optimal {
            if let Some((best, _)) = &st.best {
                if lb >= best - 1e-9 {
                    st.stats.latency_prunes += 1;
                    st.stats.prunes_by_depth[self.depth_bucket(idx)] += 1;
                    return Step::Rejected;
                }
            }
            // Cross-thread incumbent: strictly worse only, so a bound that
            // ties the (racy) shared value never prunes — that keeps the
            // merged result independent of arrival order.
            if let Some(sh) = st.shared {
                let shared_best = f64::from_bits(sh.incumbent_bits.load(Ordering::Relaxed));
                if lb > shared_best + 1e-9 {
                    st.stats.latency_prunes += 1;
                    st.stats.prunes_by_depth[self.depth_bucket(idx)] += 1;
                    return Step::Rejected;
                }
            }
        }

        // Memory: apply deltas, tracking what we touched for undo.
        let touched_from = st.touched.len();
        let mut mem_ok = true;
        {
            let add = |boundary: u32, amount: u64, st: &mut State| {
                if amount == 0 {
                    return true;
                }
                let i = (boundary - 2) as usize;
                st.mem[i] += amount;
                st.touched.push((i, amount));
                st.mem[i] <= self.arch.memory_capacity()
            };
            'mem: {
                for &(q, data) in &self.pred_edges[ti] {
                    let pa = st.part[q];
                    if pa < p {
                        for b in (pa + 1)..=p {
                            if !add(b, data, st) {
                                mem_ok = false;
                                break 'mem;
                            }
                        }
                    }
                }
                if self.arch.env_policy() == EnvMemoryPolicy::Resident {
                    for b in 2..=p {
                        if !add(b, task.env_input(), st) {
                            mem_ok = false;
                            break 'mem;
                        }
                    }
                    for b in (p + 1)..=self.n {
                        if !add(b, task.env_output(), st) {
                            mem_ok = false;
                            break 'mem;
                        }
                    }
                }
            }
        }
        if !mem_ok {
            st.stats.memory_rejects += 1;
            st.stats.prunes_by_depth[self.depth_bucket(idx)] += 1;
            while st.touched.len() > touched_from {
                let Some((i, amount)) = st.touched.pop() else { break };
                st.mem[i] -= amount;
            }
            return Step::Rejected;
        }

        // Apply.
        st.part[ti] = p;
        st.dpc[ti] = m;
        st.area_used[pi] += dp.area().units();
        for (k, used) in st.sec_used[pi].iter_mut().enumerate() {
            *used += dp.secondary_usage(k);
        }
        st.chain_ns[ti] = chain;
        st.gdepth_ns[ti] = gdepth;
        let old_d = st.d_part_ns[pi];
        st.d_part_ns[pi] = new_d;
        st.sum_d_ns = new_sum;
        let old_max = st.max_part;
        st.max_part = new_max_part;
        let old_chain_lb = st.chain_lb_max;
        st.chain_lb_max = chain_track;
        st.total_area += dp.area().units();
        Step::Applied(Undo { ti, pi, m, delta_d, old_d, old_max, old_chain_lb, touched_from })
    }

    /// Reverses one [`Step::Applied`] assignment.
    fn undo_step(&self, u: Undo, st: &mut State) {
        let dp = &self.graph.tasks()[u.ti].design_points()[u.m];
        st.part[u.ti] = 0;
        st.dpc[u.ti] = 0;
        st.area_used[u.pi] -= dp.area().units();
        for (k, used) in st.sec_used[u.pi].iter_mut().enumerate() {
            *used -= dp.secondary_usage(k);
        }
        st.chain_ns[u.ti] = 0.0;
        st.gdepth_ns[u.ti] = 0.0;
        st.d_part_ns[u.pi] = u.old_d;
        st.sum_d_ns -= u.delta_d;
        st.max_part = u.old_max;
        st.chain_lb_max = u.old_chain_lb;
        st.total_area -= dp.area().units();
        while st.touched.len() > u.touched_from {
            let Some((i, amount)) = st.touched.pop() else { break };
            st.mem[i] -= amount;
        }
    }

    /// Tries assigning task `t` to `(p, m)`. Returns `None` if the
    /// candidate was rejected by a constraint or prune, `Some(abort)` after
    /// descending.
    fn try_candidate(
        &self,
        idx: usize,
        t: TaskId,
        p: u32,
        m: usize,
        st: &mut State,
    ) -> Option<bool> {
        match self.check_and_apply(idx, t, p, m, st, true) {
            Step::Rejected => None,
            Step::Abort => Some(true),
            Step::Applied(u) => {
                let abort = self.dfs(idx + 1, st);
                self.undo_step(u, st);
                Some(abort)
            }
        }
    }

    fn ct_ns(&self) -> f64 {
        self.arch.reconfig_time().as_ns()
    }

    /// Runs the search with the assignment tree split into subtree jobs on
    /// the shared work-stealing pool (`0` = auto via `RTR_THREADS` /
    /// available parallelism).
    ///
    /// When the caller is already inside a pool — a window solve submitted
    /// from a phase-2 candidate job — the ambient pool is reused and
    /// `threads` is ignored: both layers draw from the one global thread
    /// budget, and this window's jobs can be stolen by idle workers from
    /// other candidates (and vice versa) instead of idling a statically
    /// split sub-pool. Otherwise a pool of `threads` is created for the
    /// duration of the solve.
    ///
    /// The first levels of the tree are expanded sequentially — pruning
    /// against the greedy seed only — into prefix jobs; the pool hands jobs
    /// out in ascending order, participants share an incumbent as
    /// `AtomicU64` latency bits, and the merge scans job results in
    /// ascending job order accepting strict improvements, so the returned
    /// `Solution` and `SearchOutcome` are identical to [`run`](Self::run)
    /// for any thread count. Fired node/time limits are the exception: the
    /// global budget is exact, but *which* nodes it covers depends on
    /// scheduling, so limit-hit results are best-effort (exactly like
    /// wall-clock deadlines on the sequential path).
    pub fn run_parallel(&self, threads: usize) -> (SearchOutcome, SearchStats) {
        let threads = if threads == 0 { crate::search::default_thread_count() } else { threads };
        let count = self.graph.task_count();
        if threads <= 1 || count < 2 {
            return self.run();
        }
        if !self.admissible() {
            return (SearchOutcome::Infeasible, SearchStats::default());
        }
        let seed = self.greedy_seed();
        if self.goal == SearchGoal::FirstFeasible {
            if let Some((_, sol)) = seed {
                return (SearchOutcome::Feasible(sol), SearchStats::default());
            }
        }
        let seed = seed.map(|(total, sol)| (total, sol.placements().to_vec()));
        let start = Instant::now();
        rtr_sched::Pool::with(threads, |pool| self.run_on_pool(pool, seed, start))
    }

    /// The parallel search body, scheduled on `pool` (see
    /// [`run_parallel`](Self::run_parallel), which owns the public
    /// contract).
    fn run_on_pool(
        &self,
        pool: &rtr_sched::Pool,
        seed: Option<(f64, Vec<Placement>)>,
        start: Instant,
    ) -> (SearchOutcome, SearchStats) {
        let count = self.graph.task_count();
        // Job generation: deepen the split frontier until every pool
        // participant can claim several jobs (work stealing by job
        // granularity). Each pass re-expands from the root, which is cheap
        // — the frontier is tiny compared to the tree below it.
        let target = (pool.threads() * JOBS_PER_THREAD).min(MAX_JOBS);
        let mut gen = self.fresh_state(seed.clone(), start);
        let mut jobs: Vec<Vec<(u32, u32)>> = vec![Vec::new()];
        let mut depth = 0usize;
        while jobs.len() < target && depth + 1 < count {
            depth += 1;
            gen.gen_depth = Some(depth);
            gen.jobs = Vec::new();
            let abort = self.dfs(0, &mut gen);
            if abort {
                // A node/time limit fired while only generating jobs.
                let mut stats = gen.stats;
                stats.exhausted = false;
                return match gen.best {
                    Some((_, pl)) => (
                        SearchOutcome::Feasible(Solution::new(pl, self.n).compacted(self.n)),
                        stats,
                    ),
                    None => (SearchOutcome::LimitReached, stats),
                };
            }
            if gen.jobs.is_empty() {
                // Every prefix of this depth was pruned: the tree is
                // exhausted without ever reaching a leaf.
                let mut stats = gen.stats;
                stats.exhausted = true;
                return match gen.best {
                    Some((_, pl)) => (
                        SearchOutcome::Feasible(Solution::new(pl, self.n).compacted(self.n)),
                        stats,
                    ),
                    None => (SearchOutcome::Infeasible, stats),
                };
            }
            if gen.jobs.len() > MAX_JOBS && jobs.len() > 1 {
                // Deepening exploded; the previous, coarser frontier wins.
                break;
            }
            jobs = std::mem::take(&mut gen.jobs);
        }
        gen.gen_depth = None;
        publish_status(&mut gen);
        let depth = jobs[0].len();
        debug_assert!(jobs.iter().all(|j| j.len() == depth));

        let shared = Shared {
            incumbent_bits: AtomicU64::new(
                seed.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY).to_bits(),
            ),
            // Generation nodes were already charged sequentially; count them
            // against the global budget so run_parallel never exceeds it.
            nodes_claimed: AtomicU64::new(gen.stats.nodes),
            node_limit: self.limits.node_limit,
            first_found: AtomicUsize::new(usize::MAX),
            limit_hit: AtomicBool::new(false),
        };
        let results: Vec<Mutex<Option<JobResult>>> =
            (0..jobs.len()).map(|_| Mutex::new(None)).collect();
        let participants = pool.threads();
        // Per-participant worker state, created lazily on first claim and
        // reused across this batch's jobs, so the dominance memo keeps its
        // cross-job hits exactly as the bespoke per-worker states did.
        let states: Vec<Mutex<Option<State<'_>>>> =
            (0..participants).map(|_| Mutex::new(None)).collect();
        // Per-participant load accounting for the flight recorder: jobs
        // each participant actually ran and how long it stayed busy.
        let worker_jobs: Vec<AtomicU64> = (0..participants).map(|_| AtomicU64::new(0)).collect();
        let worker_busy_us: Vec<AtomicU64> = (0..participants).map(|_| AtomicU64::new(0)).collect();
        let workers_started = Instant::now();
        let report = pool.run(jobs.len(), SUBTREE_FAIL_KEY, |j| {
            let pid = pool.participant_ordinal().unwrap_or(0);
            let busy_from = Instant::now();
            let board = rtr_trace::status::board();
            let mut state_slot = states[pid].lock().unwrap_or_else(PoisonError::into_inner);
            let st = state_slot.get_or_insert_with(|| {
                let mut st = self.fresh_state(seed.clone(), start);
                st.shared = Some(&shared);
                st
            });
            if self.goal == SearchGoal::FirstFeasible {
                st.best = None;
            }
            worker_jobs[pid].fetch_add(1, Ordering::Relaxed);
            board.add_jobs_claimed(1);
            st.job_index = j;
            let job = &jobs[j];
            // Panic isolation: a panicking job (injected at the
            // `search.job` failpoint, or a genuine bug) costs at
            // most its own subtree. The panicked state is
            // corrupted mid-assignment, so every retry rebuilds
            // a fresh worker state; the merge below accepts
            // ascending strict improvements, so a rebuilt
            // incumbent never changes the outcome. catch_unwind
            // sits *inside* capture, which is not panic-safe.
            let mut attempt = 0u32;
            let mut panics = 0u64;
            let mut retries = 0u64;
            let result = loop {
                if self.goal == SearchGoal::FirstFeasible {
                    st.best = None;
                }
                st.nodes_exhausted = true;
                st.stats = SearchStats::default();
                st.published = StatusPublished::default();
                let prev_best = st.best.as_ref().map(|(b, _)| *b);
                let (finished, events) = rtr_trace::capture(|| {
                    catch_unwind(AssertUnwindSafe(|| {
                        rtr_trace::failpoint::panic_if(
                            "search.job",
                            ((j as u64) << 8) | u64::from(attempt),
                        );
                        // Relevance is checked *after* the
                        // failpoint, and jobs are claimed even
                        // past a fired limit: every job runs
                        // its full (job, attempt) fault
                        // schedule, so the degradation account
                        // is a pure function of the job list —
                        // run-to-run deterministic at a fixed
                        // worker count no matter how the
                        // scheduler interleaves the claims.
                        // Only the subtree *work* is skipped.
                        if shared.limit_hit.load(Ordering::Relaxed)
                            || (self.goal == SearchGoal::FirstFeasible
                                && shared.first_found.load(Ordering::Relaxed) < j)
                        {
                            return;
                        }
                        let span = rtr_trace::span("structured.subtree")
                            .with("job", j as u64)
                            .with("depth", depth as u64);
                        let mut undos: Vec<Undo> = Vec::with_capacity(depth);
                        let mut pruned = false;
                        for (lvl, &(p, m)) in job.iter().enumerate() {
                            // Replaying the prefix can
                            // legitimately be rejected now: a
                            // better incumbent may have arrived
                            // since generation, pruning the
                            // whole subtree.
                            match self.check_and_apply(
                                lvl,
                                self.order[lvl],
                                p,
                                m as usize,
                                st,
                                false,
                            ) {
                                Step::Applied(u) => undos.push(u),
                                _ => {
                                    pruned = true;
                                    break;
                                }
                            }
                        }
                        if !pruned {
                            self.dfs(depth, st);
                        }
                        for u in undos.into_iter().rev() {
                            self.undo_step(u, st);
                        }
                        span.finish();
                    }))
                    .is_ok()
                });
                if finished {
                    publish_status(st);
                    let found = match (&st.best, prev_best) {
                        (Some((b, pl)), Some(pb)) if *b < pb - 1e-9 => Some((*b, pl.clone())),
                        (Some((b, pl)), None) => Some((*b, pl.clone())),
                        _ => None,
                    };
                    let mut job_stats = std::mem::take(&mut st.stats);
                    st.published = StatusPublished::default();
                    job_stats.exhausted = st.nodes_exhausted;
                    job_stats.panics_caught += panics;
                    job_stats.jobs_retried += retries;
                    break JobResult { found, stats: job_stats, events };
                }
                panics += 1;
                *st = self.fresh_state(seed.clone(), start);
                st.shared = Some(&shared);
                st.job_index = j;
                if attempt >= JOB_RETRY_LIMIT {
                    break JobResult {
                        found: None,
                        stats: SearchStats {
                            panics_caught: panics,
                            jobs_retried: retries,
                            subtrees_lost: 1,
                            exhausted: false,
                            ..SearchStats::default()
                        },
                        events: Vec::new(),
                    };
                }
                attempt += 1;
                retries += 1;
            };
            if self.goal == SearchGoal::FirstFeasible && result.found.is_some() {
                shared.first_found.fetch_min(j, Ordering::Relaxed);
            }
            *results[j].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            worker_busy_us[pid].fetch_add(
                busy_from.elapsed().as_micros().min(u64::MAX as u128) as u64,
                Ordering::Relaxed,
            );
        });
        // Per-worker load balance gauges. Wall-clock-dependent and only
        // emitted on the multi-threaded path, so they never enter the
        // deterministic single-thread trace stream the replay tests compare.
        if rtr_trace::enabled() {
            let wall_us = workers_started.elapsed().as_micros().min(u64::MAX as u128) as u64;
            for (w, (jobs_run, busy)) in worker_jobs.iter().zip(&worker_busy_us).enumerate() {
                let busy_us = busy.load(Ordering::Relaxed).min(wall_us);
                rtr_trace::gauge(
                    &format!("structured.worker{w}.jobs"),
                    jobs_run.load(Ordering::Relaxed) as f64,
                );
                rtr_trace::gauge(
                    &format!("structured.worker{w}.idle_us"),
                    (wall_us - busy_us) as f64,
                );
            }
        }

        // Deterministic merge: ascending job order, strict improvement only
        // — exactly the order and acceptance rule the sequential search
        // applies across these subtrees.
        let mut stats = gen.stats;
        stats.exhausted = true;
        let mut best = seed;
        let mut first_feasible: Option<Vec<Placement>> = None;
        for slot in &results {
            match slot.lock().unwrap_or_else(PoisonError::into_inner).take() {
                Some(r) => {
                    rtr_trace::dispatch_all(r.events);
                    stats.absorb(&r.stats);
                    if let Some((lat, pl)) = r.found {
                        match self.goal {
                            SearchGoal::FirstFeasible => {
                                if first_feasible.is_none() {
                                    first_feasible = Some(pl);
                                }
                            }
                            SearchGoal::Optimal => {
                                let cur = best.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY);
                                if lat < cur - 1e-9 {
                                    best = Some((lat, pl));
                                }
                            }
                        }
                    }
                }
                None => stats.exhausted = false,
            }
        }
        if self.goal == SearchGoal::FirstFeasible && first_feasible.is_some() {
            // Matches the sequential path, where stopping at the first
            // solution still counts as an exhaustive answer.
            stats.exhausted = !shared.limit_hit.load(Ordering::Relaxed);
        }
        // Jobs the scheduler abandoned at the `sched.job` site left their
        // result slot empty (forcing `exhausted = false` above); fold the
        // pool's batch account in so the degradation surface matches the
        // in-job `search.job` site.
        stats.panics_caught += report.panics_caught;
        stats.jobs_retried += report.jobs_retried;
        stats.subtrees_lost += report.lost.len() as u64;
        let winner = match self.goal {
            SearchGoal::FirstFeasible => first_feasible,
            SearchGoal::Optimal => best.map(|(_, pl)| pl),
        };
        match winner {
            Some(pl) => {
                (SearchOutcome::Feasible(Solution::new(pl, self.n).compacted(self.n)), stats)
            }
            None if stats.exhausted => (SearchOutcome::Infeasible, stats),
            None => (SearchOutcome::LimitReached, stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_solution;
    use rtr_graph::{Area, DesignPoint, Latency, TaskGraphBuilder};

    fn dp(name: &str, area: u64, lat: f64) -> DesignPoint {
        DesignPoint::new(name, Area::new(area), Latency::from_ns(lat))
    }

    fn small_graph() -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let a = b
            .add_task("a")
            .design_point(dp("s", 50, 300.0))
            .design_point(dp("f", 90, 150.0))
            .env_input(2)
            .finish();
        let c = b
            .add_task("c")
            .design_point(dp("s", 60, 250.0))
            .design_point(dp("f", 95, 120.0))
            .env_output(1)
            .finish();
        b.add_edge(a, c, 3).unwrap();
        b.build().unwrap()
    }

    fn run(
        graph: &TaskGraph,
        arch: &Architecture,
        n: u32,
        d_max: f64,
        goal: SearchGoal,
    ) -> SearchOutcome {
        StructuredSolver::new(graph, arch, n, d_max, goal, SearchLimits::default()).run().0
    }

    #[test]
    fn finds_feasible_and_respects_window() {
        let g = small_graph();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(50.0));
        match run(&g, &arch, 2, 1_000.0, SearchGoal::FirstFeasible) {
            SearchOutcome::Feasible(sol) => {
                assert!(validate_solution(&g, &arch, &sol).is_empty());
                assert!(sol.total_latency(&g, &arch).as_ns() <= 1_000.0);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn window_below_optimum_is_infeasible() {
        let g = small_graph();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(50.0));
        // Optimum is 150 + 120 + 2*50 = 370.
        assert_eq!(run(&g, &arch, 2, 369.0, SearchGoal::FirstFeasible), SearchOutcome::Infeasible);
        assert!(matches!(
            run(&g, &arch, 2, 370.0, SearchGoal::FirstFeasible),
            SearchOutcome::Feasible(_)
        ));
    }

    #[test]
    fn optimal_mode_finds_minimum() {
        let g = small_graph();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(50.0));
        match run(&g, &arch, 2, 1e9, SearchGoal::Optimal) {
            SearchOutcome::Feasible(sol) => {
                assert_eq!(sol.total_latency(&g, &arch).as_ns(), 370.0);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn oversized_task_is_infeasible() {
        let g = small_graph();
        let arch = Architecture::new(Area::new(40), 16, Latency::from_ns(50.0));
        assert_eq!(run(&g, &arch, 4, 1e9, SearchGoal::FirstFeasible), SearchOutcome::Infeasible);
    }

    #[test]
    fn memory_blocks_split() {
        let g = small_graph();
        // Splitting puts edge data (3 units) across the boundary; the area
        // (50 + 60 > 100) rules out sharing a partition, so memory 2 makes
        // the instance infeasible while memory 3 admits the split.
        let arch = Architecture::new(Area::new(100), 2, Latency::from_ns(50.0));
        assert_eq!(run(&g, &arch, 2, 1e9, SearchGoal::FirstFeasible), SearchOutcome::Infeasible);
        let arch_ok = Architecture::new(Area::new(100), 3, Latency::from_ns(50.0));
        assert!(matches!(
            run(&g, &arch_ok, 2, 1e9, SearchGoal::FirstFeasible),
            SearchOutcome::Feasible(_)
        ));
    }

    #[test]
    fn node_limit_reports_limit() {
        let g = small_graph();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(50.0));
        let limits = SearchLimits { node_limit: 1, time_limit: None };
        // Force a search that needs more than one node: infeasible window.
        let (out, stats) =
            StructuredSolver::new(&g, &arch, 2, 369.0, SearchGoal::FirstFeasible, limits).run();
        assert_eq!(out, SearchOutcome::LimitReached);
        assert_eq!(stats.nodes, 1);
    }

    #[test]
    fn symmetric_tasks_are_broken() {
        // Four identical independent tasks: symmetry breaking should keep the
        // node count tiny even for an exhaustive (infeasible) search.
        let mut b = TaskGraphBuilder::new();
        for i in 0..4 {
            b.add_task(format!("t{i}")).design_point(dp("m", 10, 100.0)).finish();
        }
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(10), 16, Latency::from_ns(1.0));
        // Each partition fits exactly one task; with N=4 the only solutions
        // (up to symmetry) place one task per partition: total = 400 + 4.
        let (out, stats) = StructuredSolver::new(
            &g,
            &arch,
            4,
            1.0, // infeasible: forces exhaustion
            SearchGoal::FirstFeasible,
            SearchLimits::default(),
        )
        .run();
        assert_eq!(out, SearchOutcome::Infeasible);
        assert!(stats.nodes < 100, "symmetry breaking failed: {} nodes", stats.nodes);

        let (out2, _) = StructuredSolver::new(
            &g,
            &arch,
            4,
            404.0,
            SearchGoal::FirstFeasible,
            SearchLimits::default(),
        )
        .run();
        match out2 {
            SearchOutcome::Feasible(sol) => {
                assert_eq!(sol.partitions_used(), 4);
                assert_eq!(sol.total_latency(&g, &arch).as_ns(), 404.0);
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn solutions_are_compacted() {
        let mut b = TaskGraphBuilder::new();
        b.add_task("only").design_point(dp("m", 10, 100.0)).finish();
        let g = b.build().unwrap();
        let arch = Architecture::new(Area::new(100), 16, Latency::from_ns(1.0));
        match run(&g, &arch, 5, 1e9, SearchGoal::FirstFeasible) {
            SearchOutcome::Feasible(sol) => assert_eq!(sol.partitions_used(), 1),
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn absorb_ands_exhausted() {
        let exhausted = |e| SearchStats { exhausted: e, ..SearchStats::default() };
        let mut acc = exhausted(true);
        acc.absorb(&exhausted(true));
        assert!(acc.exhausted);
        acc.absorb(&exhausted(false));
        assert!(!acc.exhausted);
        // Once false, a later exhaustive run must not flip it back.
        acc.absorb(&exhausted(true));
        assert!(!acc.exhausted);
    }

    /// A two-layer graph wide enough to spawn many subtree jobs and deep
    /// enough for memoization to apply.
    fn layered_graph(width: usize) -> TaskGraph {
        let mut b = TaskGraphBuilder::new();
        let top: Vec<_> = (0..width)
            .map(|i| {
                b.add_task(format!("u{i}"))
                    .design_point(dp("s", 20 + 7 * i as u64, 200.0 + 30.0 * i as f64))
                    .design_point(dp("f", 45 + 5 * i as u64, 90.0 + 11.0 * i as f64))
                    .finish()
            })
            .collect();
        let bottom: Vec<_> = (0..width)
            .map(|i| {
                b.add_task(format!("v{i}"))
                    .design_point(dp("s", 25 + 6 * i as u64, 180.0 + 23.0 * i as f64))
                    .design_point(dp("f", 50 + 4 * i as u64, 80.0 + 13.0 * i as f64))
                    .finish()
            })
            .collect();
        for i in 0..width {
            b.add_edge(top[i], bottom[i], 1 + (i as u64 % 3)).unwrap();
            b.add_edge(top[i], bottom[(i + 1) % width], 1).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn run_parallel_matches_run() {
        let g = layered_graph(4);
        let arch = Architecture::new(Area::new(120), 32, Latency::from_ns(40.0));
        for goal in [SearchGoal::Optimal, SearchGoal::FirstFeasible] {
            for d_max in [900.0, 1_400.0, 2_500.0, 1e9] {
                let solver =
                    StructuredSolver::new(&g, &arch, 3, d_max, goal, SearchLimits::default());
                let (sequential, seq_stats) = solver.run();
                for threads in [2, 4, 8] {
                    let (parallel, par_stats) = solver.run_parallel(threads);
                    assert_eq!(
                        parallel, sequential,
                        "goal {goal:?} d_max {d_max} diverged at {threads} threads"
                    );
                    assert_eq!(par_stats.exhausted, seq_stats.exhausted);
                }
            }
        }
    }

    #[test]
    fn parallel_node_budget_is_global() {
        let g = layered_graph(5);
        let arch = Architecture::new(Area::new(120), 32, Latency::from_ns(40.0));
        let limits = SearchLimits { node_limit: 500, time_limit: None };
        let solver = StructuredSolver::new(&g, &arch, 3, 1e9, SearchGoal::Optimal, limits);
        let (_, stats) = solver.run_parallel(4);
        assert!(
            stats.nodes <= 500,
            "global budget exceeded: {} nodes across all workers",
            stats.nodes
        );
        assert!(!stats.exhausted, "a 500-node budget cannot exhaust this tree");
    }

    #[test]
    fn memoization_prunes_without_changing_the_optimum() {
        let g = layered_graph(4);
        let arch = Architecture::new(Area::new(120), 32, Latency::from_ns(40.0));
        let base =
            StructuredSolver::new(&g, &arch, 3, 1e9, SearchGoal::Optimal, SearchLimits::default());
        let (with_memo, memo_stats) = base.run();
        let off =
            StructuredSolver::new(&g, &arch, 3, 1e9, SearchGoal::Optimal, SearchLimits::default())
                .with_memo_limit(0);
        let (without_memo, off_stats) = off.run();
        assert_eq!(with_memo, without_memo);
        assert_eq!(off_stats.dominance_prunes, 0);
        assert!(
            memo_stats.nodes <= off_stats.nodes,
            "memoization increased nodes: {} > {}",
            memo_stats.nodes,
            off_stats.nodes
        );
    }
}
