//! Ablation: bisection (the paper's Figure 1) vs. aggressive descent as the
//! window-tightening strategy of `Reduce_Latency`, on the DCT.
//!
//! `cargo run --release -p rtr-bench --bin ablation_strategy`

use rtr_bench::{per_solve_limits, BenchRun, DctExperiment};
use rtr_core::{RefinementStrategy, TemporalPartitioner};
use rtr_workloads::dct::dct_4x4;
use std::time::Instant;

fn main() {
    let graph = dct_4x4();
    let mut bench = BenchRun::new("ablation_strategy");
    for exp in [DctExperiment::table5(), DctExperiment::table7()] {
        let arch = exp.architecture();
        println!(
            "DCT, R_max = {}, δ = {} ns (table {} setup):",
            exp.r_max, exp.delta_ns, exp.table
        );
        for strategy in [RefinementStrategy::Bisection, RefinementStrategy::AggressiveDescent] {
            let mut params = exp.params();
            params.strategy = strategy;
            params.limits = per_solve_limits();
            let part = TemporalPartitioner::new(&graph, &arch, params).expect("tasks fit");
            let start = Instant::now();
            let ex = part.explore().expect("exploration runs");
            let elapsed = start.elapsed();
            println!(
                "  {:>18}: D_a = {:?} ns in {} solves, {:.2?}",
                strategy.to_string(),
                ex.best_latency.map(|l| l.as_ns()),
                ex.records.len(),
                elapsed
            );
            let prefix = format!(
                "table{}.{}.",
                exp.table,
                match strategy {
                    RefinementStrategy::Bisection => "bisection",
                    RefinementStrategy::AggressiveDescent => "aggressive",
                }
            );
            bench.record_exploration(&prefix, &ex);
            bench.metric(format!("{prefix}elapsed_ms"), elapsed.as_secs_f64() * 1e3);
        }
    }
    println!("\nbisection pays extra solves to recover from undecided windows;");
    println!("aggressive descent stops refining a bound at its first failure.");
    bench.write_and_report();
}
