//! Randomized tests for the task-graph model on seeded random DAGs.
//! Deterministic (xorshift streams), so any failure reproduces exactly.

use rtr_graph::{Area, DesignPoint, Latency, PathLimits, TaskGraph, TaskGraphBuilder};

const CASES: u64 = 120;

/// A deterministic xorshift64 stream.
fn stream(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// Builds a random DAG directly (edges always point forward in id order, so
/// acyclicity holds by construction).
fn random_graph(salt: u64, case: u64) -> TaskGraph {
    let mut next = stream(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(case));
    let n = (next() % 19 + 1) as usize; // 1..20
    let mut b = TaskGraphBuilder::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let dps = 1 + (next() % 3) as usize;
            let mut task = b.add_task(format!("t{i}"));
            for d in 0..dps {
                task = task.design_point(DesignPoint::new(
                    format!("dp{d}"),
                    Area::new(next() % 100 + 1),
                    Latency::from_ns((next() % 1000) as f64),
                ));
            }
            task.env_input(next() % 4).env_output(next() % 2).finish()
        })
        .collect();
    for j in 1..n {
        let edges = next() % 3;
        for _ in 0..edges {
            let i = (next() % j as u64) as usize;
            // Ignore duplicates.
            let _ = b.add_edge(ids[i], ids[j], next() % 8 + 1);
        }
    }
    b.build().expect("forward edges keep the graph acyclic")
}

/// A random string mixing ASCII printables and a few multi-byte chars, to
/// stress the parser the way proptest's `\PC` regex did.
fn random_text(next: &mut impl FnMut() -> u64, max_len: u64) -> String {
    let len = next() % (max_len + 1);
    (0..len)
        .map(|_| match next() % 20 {
            0 => 'é',
            1 => 'λ',
            2 => '→',
            3 => '\t',
            _ => char::from((next() % 95 + 32) as u8),
        })
        .collect()
}

/// The topological order is a permutation that respects every edge.
#[test]
fn topological_order_is_valid() {
    for case in 0..CASES {
        let g = random_graph(1, case);
        let order = g.topological_order();
        assert_eq!(order.len(), g.task_count());
        let mut pos = vec![usize::MAX; g.task_count()];
        for (i, t) in order.iter().enumerate() {
            pos[t.index()] = i;
        }
        assert!(pos.iter().all(|&p| p != usize::MAX));
        for e in g.edges() {
            assert!(pos[e.src().index()] < pos[e.dst().index()], "case {case}");
        }
    }
}

/// Successor and predecessor lists mirror the edge list exactly.
#[test]
fn adjacency_mirrors_edges() {
    for case in 0..CASES {
        let g = random_graph(2, case);
        for e in g.edges() {
            assert!(g.successors(e.src()).contains(&e.dst()), "case {case}");
            assert!(g.predecessors(e.dst()).contains(&e.src()), "case {case}");
        }
        let degree_sum: usize = g.task_ids().map(|t| g.successors(t).len()).sum();
        assert_eq!(degree_sum, g.edge_count(), "case {case}");
    }
}

/// Text serialization round-trips exactly.
#[test]
fn text_round_trip() {
    for case in 0..CASES {
        let g = random_graph(3, case);
        let text = g.to_text();
        let parsed = TaskGraph::from_text(&text).unwrap();
        assert_eq!(&g, &parsed, "case {case}");
    }
}

/// Path enumeration agrees with the DP path count when not truncated.
#[test]
fn path_enumeration_agrees_with_count() {
    for case in 0..CASES {
        let g = random_graph(4, case);
        let e = g.enumerate_paths(PathLimits { max_paths: 5000 });
        if !e.is_truncated() {
            assert_eq!(Some(e.paths().len() as u128), e.total_path_count(), "case {case}");
        }
        for p in e.paths() {
            assert!(g.predecessors(p[0]).is_empty(), "case {case}");
            assert!(g.successors(*p.last().unwrap()).is_empty(), "case {case}");
        }
    }
}

/// The min-latency critical path is a lower bound on any path sum and
/// is realized by some root→leaf path.
#[test]
fn critical_path_is_max_over_paths() {
    for case in 0..CASES {
        let g = random_graph(5, case);
        let e = g.enumerate_paths(PathLimits { max_paths: 5000 });
        if e.is_truncated() {
            continue;
        }
        let best = e
            .paths()
            .iter()
            .map(|p| {
                p.iter().map(|t| g.task(*t).min_latency_point().latency().as_ns()).sum::<f64>()
            })
            .fold(0.0f64, f64::max);
        assert!((g.critical_path_min_latency().as_ns() - best).abs() < 1e-6, "case {case}");
    }
}

/// Reachability is consistent with edges and transitive.
#[test]
fn reachability_is_transitive() {
    for case in 0..CASES {
        let g = random_graph(6, case);
        for e in g.edges() {
            assert!(g.reaches(e.src(), e.dst()), "case {case}");
            assert!(!g.reaches(e.dst(), e.src()), "case {case}: a DAG has no back reachability");
        }
        // Spot-check transitivity along two consecutive edges.
        for e1 in g.edges() {
            for &s in g.successors(e1.dst()) {
                assert!(g.reaches(e1.src(), s), "case {case}");
            }
        }
    }
}

/// The text parser never panics, whatever bytes it is fed.
#[test]
fn parser_never_panics() {
    let mut next = stream(7);
    for _ in 0..CASES {
        let input = random_text(&mut next, 400);
        let _ = TaskGraph::from_text(&input);
    }
}

/// The parser also survives near-miss inputs built from real directives.
#[test]
fn parser_survives_directive_soup() {
    let mut next = stream(8);
    for _ in 0..CASES {
        let lines = next() % 12;
        let parts: Vec<String> = (0..lines)
            .map(|_| match next() % 8 {
                0 => "task a env_in=0 env_out=0".to_owned(),
                1 => " dp m area=1 latency_ns=1".to_owned(),
                2 => "edge a -> a data=1".to_owned(),
                3 => "task".to_owned(),
                4 => "dp".to_owned(),
                5 => "edge x -> y".to_owned(),
                6 => "# comment".to_owned(),
                _ => random_text(&mut next, 30),
            })
            .collect();
        let _ = TaskGraph::from_text(&parts.join("\n"));
    }
}

/// DOT export names every task and edge.
#[test]
fn dot_is_complete() {
    for case in 0..CASES {
        let g = random_graph(9, case);
        let dot = g.to_dot();
        assert_eq!(dot.matches(" -> ").count(), g.edge_count(), "case {case}");
        for t in g.task_ids() {
            let node = format!("t{} [label=", t.index());
            assert!(dot.contains(&node), "case {case}: missing node {node}");
        }
    }
}
