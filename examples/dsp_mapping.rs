//! Multiple resource types end to end: synthesize design points with the
//! Virtex-style library (hard multiplier blocks = secondary resource
//! class 0), then partition under a per-configuration DSP budget — the
//! paper's "similar equations can be added if multiple resource types
//! exist in the FPGA" extension in action.
//!
//! Run with `cargo run --release --example dsp_mapping`.

use rtrpart::graph::{Area, Latency, TaskGraphBuilder};
use rtrpart::hls::{synthesize_task, BehavioralTask, EstimatorOptions, FuLibrary, OpKind};
use rtrpart::{Architecture, ExploreParams, TemporalPartitioner};

/// A 4-tap correlator: 4 multiplies into an adder tree.
fn correlator(name: &str, width: u32) -> BehavioralTask {
    let mut t = BehavioralTask::new(name);
    let m: Vec<_> = (0..4).map(|_| t.add_op(OpKind::Mul, width, &[])).collect();
    let a0 = t.add_op(OpKind::Add, width, &[m[0], m[1]]);
    let a1 = t.add_op(OpKind::Add, width, &[m[2], m[3]]);
    t.add_op(OpKind::Add, width, &[a0, a1]);
    t
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = FuLibrary::virtex_style();
    let opts = EstimatorOptions::default();

    // Three pipelined correlator stages.
    let mut b = TaskGraphBuilder::new();
    let mut prev = None;
    for i in 0..3 {
        let task = synthesize_task(&correlator(&format!("stage{i}"), 16), &lib, &opts, 4, 1)?;
        let id = b.add_prepared_task(task);
        if let Some(p) = prev {
            b.add_edge(p, id, 4)?;
        }
        prev = Some(id);
    }
    let graph = b.build()?;

    println!("== design points (area, latency, DSP blocks) ==");
    for task in graph.tasks().iter().take(1) {
        for dp in task.design_points() {
            println!("  {dp}, dsp = {:?}", dp.secondary());
        }
    }

    // A device with plenty of fabric but only 6 DSP blocks per
    // configuration: the partitioner has to ration hard multipliers.
    for dsp_budget in [2u64, 6, 12] {
        let arch = Architecture::new(Area::new(400), 64, Latency::from_us(1.0))
            .with_secondary_capacities(vec![dsp_budget]);
        let params =
            ExploreParams { delta: Latency::from_ns(20.0), gamma: 3, ..Default::default() };
        let partitioner = TemporalPartitioner::new(&graph, &arch, params)?;
        let exploration = partitioner.explore()?;
        let best = exploration.best.expect("feasible");
        let dsp_per_partition: Vec<u64> =
            (1..=best.partitions_used()).map(|p| best.partition_secondary(&graph, p, 0)).collect();
        println!(
            "\nDSP budget {dsp_budget}: total {}, η = {}, DSPs per configuration {:?}",
            exploration.best_latency.unwrap(),
            best.partitions_used(),
            dsp_per_partition
        );
        assert!(dsp_per_partition.iter().all(|&d| d <= dsp_budget));
    }
    println!("\nlarger DSP budgets unlock faster module sets per configuration.");
    Ok(())
}
